// Package svc turns the one-shot simulation CLI into a long-running
// simulation-as-a-service daemon (cmd/mpisimd): clients POST a job spec
// (program + machine/topology/placement/fault configuration), poll the
// job through its lifecycle, and fetch the run artifact when it reaches
// a terminal state.
//
// Robustness is the core of the design, not a bolt-on:
//
//   - Admission control: a bounded queue with configurable concurrency.
//     Submissions beyond capacity get 429 + Retry-After instead of
//     accepting unbounded work; a draining server answers 503.
//   - Isolation: every job runs under its own sim.Limits (event,
//     virtual-time and wall budgets, no-progress watchdog) and a panic
//     guard, so one poisoned job yields a `failed` record — with the
//     *sim.PanicError snapshot when the kernel captured one — while the
//     server keeps serving.
//   - Crash safety: every job mutation is journaled write-ahead to an
//     append-only JSONL file, and artifacts live in a content-addressed
//     store (sha256-named, checksum-verified on read, temp+rename
//     writes). A killed-and-restarted daemon replays the journal,
//     re-enqueues queued jobs and deterministically resolves interrupted
//     ones (re-run, or mark aborted), and sweeps orphaned artifacts.
//   - Graceful drain: on SIGTERM the server stops admitting, cancels
//     running jobs via their contexts, persists their partial artifacts
//     (Artifact.Partial + progress %) and exits; still-queued jobs stay
//     `pending` in the journal and are recovered by the next start.
//   - Caching: compiled IR/STG and calibration tables are
//     content-addressed by program + machine configuration, so repeat
//     submissions skip the compiler (and calibration); whole artifacts
//     are content-addressed by the full spec, so an identical
//     resubmission is answered from the store — byte-identical to a
//     fresh run by the determinism gates.
//
// The per-run telemetry plane (obs.Timeline / obs.RunInfo, PR 8) is
// mounted per job at /jobs/{id}/obs/*.
package svc

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"mpisim/internal/apps"
	"mpisim/internal/core"
	"mpisim/internal/fault"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/net"
	"mpisim/internal/tracein"
)

// JobState is the lifecycle state of one submitted job.
type JobState string

// Job lifecycle: pending → compiling → running → done | aborted | failed.
const (
	// JobPending: journaled and queued, not yet picked up by a worker.
	JobPending JobState = "pending"
	// JobCompiling: a worker is compiling (and, for AM mode,
	// calibrating) the program; skipped on a compile-cache hit.
	JobCompiling JobState = "compiling"
	// JobRunning: the simulation is executing.
	JobRunning JobState = "running"
	// JobDone: completed; the artifact is in the store.
	JobDone JobState = "done"
	// JobAborted: stopped before completion (budget, watchdog, client
	// cancel, drain, or daemon restart); a partial artifact may exist.
	JobAborted JobState = "aborted"
	// JobFailed: the job itself was poisoned — compile/validation error,
	// static-verification refusal, or a panic (spec materialization or a
	// simulated-process body, captured as a *sim.PanicError snapshot).
	JobFailed JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobAborted || s == JobFailed
}

// SpecLimits are the per-job run budgets a client may request. The
// server clamps each against its own caps (Options.MaxEventsCap etc.),
// so a client can tighten but never exceed the operator's bounds.
type SpecLimits struct {
	// MaxEvents aborts the run after this many kernel events (0 = server
	// default).
	MaxEvents int64 `json:"max_events,omitempty"`
	// MaxVirtualTime aborts the run past this virtual time in seconds.
	MaxVirtualTime float64 `json:"max_virtual_time,omitempty"`
	// StallEvents arms the no-progress watchdog: abort after this many
	// events without virtual time advancing.
	StallEvents int64 `json:"stall_events,omitempty"`
	// WallTimeoutMS bounds host wall-clock time for the run.
	WallTimeoutMS int64 `json:"wall_timeout_ms,omitempty"`
}

// JobSpec is the submission body of POST /jobs. Exactly one of App
// (a registered application) or Program (inline IR pseudocode, the
// stgdump format) selects the workload.
type JobSpec struct {
	// App names a registered application (internal/apps).
	App string `json:"app,omitempty"`
	// Program is inline IR program text (see examples/programs/*.ir).
	Program string `json:"program,omitempty"`
	// Trace is an inline JSONL trace (internal/tracein). A trace
	// submission replays the recorded schedule instead of compiling a
	// program; mutually exclusive with App and Program, and the mode
	// becomes "replay". Malformed traces are rejected at admission with
	// the parser's line-anchored diagnostic — never enqueued.
	Trace string `json:"trace,omitempty"`
	// TraceRanks, when > 0, extrapolates the trace to this rank count (a
	// multiple of the trace's own) on the server before replaying.
	TraceRanks int `json:"trace_ranks,omitempty"`
	// Mode is the evaluation mode: "measured", "de", or "am" (default);
	// "replay" for trace submissions (set automatically).
	Mode string `json:"mode,omitempty"`
	// Ranks is the target process count.
	Ranks int `json:"ranks"`
	// Inputs overrides the program's problem-size parameters (merged
	// over the app defaults for registered applications).
	Inputs map[string]float64 `json:"inputs,omitempty"`
	// Machine names the target machine preset (default "ibmsp").
	Machine string `json:"machine,omitempty"`
	// Topology / Placement override the machine's interconnect model
	// ("bus", "torus:dims=4x4", "fattree:k=4"; "block", "roundrobin",
	// "random:SEED"). "graph:PATH" is rejected: the daemon does not read
	// server-side files named by clients.
	Topology  string `json:"topology,omitempty"`
	Placement string `json:"placement,omitempty"`
	// Faults is an inline deterministic fault-injection scenario.
	Faults *fault.Scenario `json:"faults,omitempty"`
	// CalRanks sets the AM calibration rank count (default
	// min(Ranks, 16)).
	CalRanks int `json:"cal_ranks,omitempty"`
	// TaskTimes supplies a w_i table directly, skipping calibration.
	TaskTimes map[string]float64 `json:"task_times,omitempty"`
	// SkipChecks disables the pre-simulation static verifier.
	SkipChecks bool `json:"skip_checks,omitempty"`
	// Limits tightens the per-job run budgets.
	Limits *SpecLimits `json:"limits,omitempty"`
}

// maxSpecBytes bounds a submission body; larger requests get 400.
const maxSpecBytes = 4 << 20

// DecodeSpec strictly decodes a submission body: unknown fields,
// trailing data and non-finite numbers are errors, never panics. It
// returns the decoded spec with defaults applied (Normalize).
func DecodeSpec(data []byte) (*JobSpec, error) {
	if len(data) > maxSpecBytes {
		return nil, fmt.Errorf("svc: spec larger than %d bytes", maxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("svc: malformed spec: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("svc: trailing data after spec")
	}
	s.Normalize()
	return &s, nil
}

// Normalize fills defaulted fields in place so that hashing and
// execution see the same spec.
func (s *JobSpec) Normalize() {
	if s.Trace != "" {
		// Trace submissions replay; the machine stays empty so the trace
		// header's recorded model is the default target.
		s.Mode = "replay"
	} else {
		if s.Mode == "" {
			s.Mode = "am"
		}
		if s.Machine == "" {
			s.Machine = "ibmsp"
		}
	}
	if s.Topology == "flat" {
		s.Topology = ""
	}
}

// parseProgram parses inline program text, converting parser panics on
// hostile input into errors (the fuzz contract: malformed submissions
// must never take the daemon down).
func parseProgram(src string) (p *ir.Program, err error) {
	defer func() {
		if v := recover(); v != nil {
			p, err = nil, fmt.Errorf("program parse panic: %v", v)
		}
	}()
	return ir.Parse(src)
}

// Validate reports submission-time errors: everything cheap enough to
// answer 400 synchronously (shape, unknown names, parse errors, bad
// fault scenarios, out-of-range budgets). maxRanks > 0 caps the target
// process count. Compile and simulation errors surface later as a
// `failed` job instead.
func (s *JobSpec) Validate(maxRanks int) error {
	// effRanks is the rank count the run will actually simulate: the
	// spec's for compiled workloads, the (possibly extrapolated) trace's
	// for replays. Capacity and network checks apply to it.
	effRanks := s.Ranks
	machName := s.Machine
	if s.Trace != "" {
		if s.App != "" || s.Program != "" {
			return fmt.Errorf("svc: \"trace\" is mutually exclusive with \"app\" and \"program\"")
		}
		if s.Mode != "replay" {
			return fmt.Errorf("svc: trace submissions use mode \"replay\" (got %q)", s.Mode)
		}
		if s.CalRanks != 0 || s.TaskTimes != nil {
			return fmt.Errorf("svc: cal_ranks and task_times do not apply to trace replay")
		}
		tr, err := tracein.ParseBytes([]byte(s.Trace))
		if err != nil {
			return fmt.Errorf("svc: trace: %w", err)
		}
		effRanks = tr.Header.Ranks
		if s.TraceRanks > 0 {
			if s.TraceRanks < effRanks || s.TraceRanks%effRanks != 0 {
				return fmt.Errorf("svc: trace_ranks %d must be a multiple of the trace's %d ranks", s.TraceRanks, effRanks)
			}
			effRanks = s.TraceRanks
		}
		if s.Ranks != 0 && s.Ranks != effRanks {
			return fmt.Errorf("svc: ranks %d conflicts with the trace's effective %d (omit it)", s.Ranks, effRanks)
		}
		if machName == "" {
			machName = tr.Header.Machine
		}
		if machName == "" {
			return fmt.Errorf("svc: no machine model (spec names none and the trace header names none)")
		}
	} else {
		switch {
		case s.TraceRanks != 0:
			return fmt.Errorf("svc: trace_ranks requires \"trace\"")
		case s.App == "" && s.Program == "":
			return fmt.Errorf("svc: spec needs one of \"app\", \"program\" or \"trace\"")
		case s.App != "" && s.Program != "":
			return fmt.Errorf("svc: \"app\" and \"program\" are mutually exclusive")
		}
		if s.App != "" {
			if _, ok := apps.Registry()[s.App]; !ok {
				return fmt.Errorf("svc: unknown app %q (have %s)", s.App, strings.Join(apps.Names(), ", "))
			}
		} else if _, err := parseProgram(s.Program); err != nil {
			return fmt.Errorf("svc: program: %w", err)
		}
		switch s.Mode {
		case "measured", "de", "am":
		default:
			return fmt.Errorf("svc: unknown mode %q (want measured, de, am)", s.Mode)
		}
		if s.Ranks < 1 {
			return fmt.Errorf("svc: ranks must be >= 1 (got %d)", s.Ranks)
		}
	}
	if maxRanks > 0 && effRanks > maxRanks {
		return fmt.Errorf("svc: ranks %d beyond server cap %d", effRanks, maxRanks)
	}
	if s.CalRanks < 0 {
		return fmt.Errorf("svc: cal_ranks must not be negative")
	}
	for k, v := range s.Inputs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("svc: input %q is not finite", k)
		}
	}
	for k, v := range s.TaskTimes {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("svc: task time %q is not a finite non-negative number", k)
		}
	}
	m, err := machine.ByName(machName)
	if err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	if strings.HasPrefix(s.Topology, "graph:") {
		return fmt.Errorf("svc: topology %q not accepted over the service (server-side file)", s.Topology)
	}
	if s.Topology != "" {
		m.Topology = s.Topology
	}
	if s.Placement != "" {
		m.Placement = s.Placement
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	if _, err := net.Build(m, effRanks); err != nil {
		return fmt.Errorf("svc: %w", err)
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(effRanks); err != nil {
			return fmt.Errorf("svc: %w", err)
		}
	}
	if l := s.Limits; l != nil {
		if l.MaxEvents < 0 || l.StallEvents < 0 || l.WallTimeoutMS < 0 {
			return fmt.Errorf("svc: limits must not be negative")
		}
		if l.MaxVirtualTime < 0 || math.IsNaN(l.MaxVirtualTime) || math.IsInf(l.MaxVirtualTime, 0) {
			return fmt.Errorf("svc: max_virtual_time must be a finite non-negative number")
		}
	}
	return nil
}

// Hash is the content address of the full submission: sha256 over the
// canonical JSON encoding of the normalized spec (Go marshals struct
// fields in declaration order and maps sorted by key, so equal specs
// hash equally). Two submissions with the same hash produce
// byte-identical artifacts — the determinism gate in the test suite
// proves it — which is what lets the artifact cache answer repeats.
func (s *JobSpec) Hash() string {
	data, err := json.Marshal(s)
	if err != nil {
		// Validate rejects non-finite numbers, the only marshal failure
		// a spec can carry.
		data = []byte(fmt.Sprintf("unhashable: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// compileKey content-addresses the compiled program + calibration
// context: everything that affects compiler output and w_i tables but
// not the individual run (ranks, faults, budgets stay out).
func (s *JobSpec) compileKey() string {
	h := sha256.New()
	fmt.Fprintf(h, "app=%s\x00prog=%s\x00machine=%s\x00topo=%s\x00place=%s",
		s.App, s.Program, s.Machine, s.Topology, s.Placement)
	return hex.EncodeToString(h.Sum(nil))
}

// mode maps the spec's mode string onto core.Mode. Validate has already
// vetted it.
func (s *JobSpec) mode() core.Mode {
	switch s.Mode {
	case "measured":
		return core.Measured
	case "de":
		return core.DirectExec
	default:
		return core.Abstract
	}
}

// materialize builds the program, merged inputs and machine model for
// execution. App default-input builders may panic on unsupported rank
// counts (e.g. NAS SP on a non-square grid); the worker's panic guard
// turns that into a failed job rather than a dead daemon.
func (s *JobSpec) materialize() (*ir.Program, map[string]float64, *machine.Model, error) {
	var prog *ir.Program
	inputs := map[string]float64{}
	if s.App != "" {
		spec := apps.Registry()[s.App]
		prog = spec.Build()
		inputs = spec.Default(s.Ranks)
	} else {
		p, err := parseProgram(s.Program)
		if err != nil {
			return nil, nil, nil, err
		}
		prog = p
	}
	for k, v := range s.Inputs {
		inputs[k] = v
	}
	m, err := machine.ByName(s.Machine)
	if err != nil {
		return nil, nil, nil, err
	}
	if s.Topology != "" {
		m.Topology = s.Topology
	}
	if s.Placement != "" {
		m.Placement = s.Placement
	}
	return prog, inputs, m, nil
}

// calKey content-addresses a calibration table: the compile context
// plus the calibration configuration.
func (s *JobSpec) calKey(calRanks int, inputs map[string]float64) string {
	keys := make([]string, 0, len(inputs))
	for k := range inputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00calranks=%d", s.compileKey(), calRanks)
	for _, k := range keys {
		fmt.Fprintf(h, "\x00%s=%g", k, inputs[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// effectiveCalRanks resolves the calibration rank count the same way
// mpisim does: the spec's cal_ranks, else min(ranks, 16).
func (s *JobSpec) effectiveCalRanks() int {
	if s.CalRanks > 0 {
		return s.CalRanks
	}
	if s.Ranks > 16 {
		return 16
	}
	return s.Ranks
}

// wallTimeout returns the requested wall budget as a duration.
func (l *SpecLimits) wallTimeout() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.WallTimeoutMS) * time.Millisecond
}
