package svc

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is the content-addressed artifact store: every blob lives at
// cas/<sha256-hex> inside the daemon data directory. Writes go through
// a temp file + fsync + rename, so a crash can leave at worst a stray
// temp file (swept on recovery), never a torn blob under a final name;
// reads re-hash the bytes and refuse corrupted content.
type Store struct {
	dir string
}

// casDirName is the store directory inside a daemon data directory.
const casDirName = "cas"

// tmpPrefix marks in-flight writes; Sweep removes leftovers.
const tmpPrefix = ".tmp-"

// OpenStore creates (if needed) and returns the store under dir.
func OpenStore(dir string) (*Store, error) {
	d := filepath.Join(dir, casDirName)
	if err := os.MkdirAll(d, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: d}, nil
}

// Put writes data under its content address and returns the sha256 hex
// hash. Re-putting identical content is a no-op.
func (s *Store) Put(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	final := filepath.Join(s.dir, hash)
	if _, err := os.Stat(final); err == nil {
		return hash, nil
	}
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+hash+"-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	return hash, nil
}

// Get returns the blob stored under hash, verifying the checksum: bytes
// that no longer hash to their name are corruption, not data.
func (s *Store) Get(hash string) ([]byte, error) {
	if !validHash(hash) {
		return nil, fmt.Errorf("svc: invalid artifact hash %q", hash)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, hash))
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != hash {
		return nil, fmt.Errorf("svc: artifact %s corrupted (checksum mismatch)", hash)
	}
	return data, nil
}

// Has reports whether a blob exists under hash (no checksum pass).
func (s *Store) Has(hash string) bool {
	if !validHash(hash) {
		return false
	}
	_, err := os.Stat(filepath.Join(s.dir, hash))
	return err == nil
}

// Sweep removes temp leftovers and any blob whose hash is not in
// referenced — the orphans a crash between a Put and its journal record
// can leave behind. It returns the number of files removed.
func (s *Store) Sweep(referenced map[string]bool) (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, tmpPrefix) || !referenced[name] {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return removed, err
			}
			removed++
		}
	}
	return removed, nil
}

// validHash guards path construction against traversal: only lowercase
// sha256 hex names reach the filesystem.
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for _, c := range h {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
