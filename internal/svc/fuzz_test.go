package svc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzDecodeSpec is the submission-decoding robustness contract: no
// byte sequence a client can POST may panic the decoder, and anything
// the decoder accepts must validate (or reject) without panicking
// either — a malformed submission becomes a 400 diagnostic, never a
// dead daemon and never an enqueued job.
func FuzzDecodeSpec(f *testing.F) {
	f.Add([]byte(`{"app":"sample","ranks":4}`))
	f.Add([]byte(`{"app":"tomcatv","mode":"am","ranks":64,"inputs":{"N":2048}}`))
	f.Add([]byte(`{"program":"program p\nproc main(rank)\nend","ranks":2}`))
	f.Add([]byte(`{"app":"sample","ranks":4}{"app":"sample"}`)) // trailing data
	f.Add([]byte(`{"app":"sample","ranks":4,"bogus":1}`))       // unknown field
	f.Add([]byte(`{"ranks":1e999}`))                            // overflow
	f.Add([]byte(`{"inputs":{"N":null}}`))
	f.Add([]byte(`{"app":"sample","ranks":4,"topology":"graph:/etc/passwd"}`))
	f.Add([]byte(`{"app":"sample","ranks":4,"limits":{"max_events":-1}}`))
	f.Add([]byte(`{"faults":{"seed":1}}`))
	f.Add([]byte(`{"trace":"{\"mpisim_trace\":1,\"ranks\":2,\"machine\":\"ibmsp\"}\n{\"r\":0,\"op\":\"barrier\"}\n{\"r\":1,\"op\":\"barrier\"}\n"}`))
	f.Add([]byte(`{"trace":"{\"mpisim_trace\":1,\"ranks\":2}\n","trace_ranks":8}`))
	f.Add([]byte(`{"trace":"{\"mpisim_trace\":1,\"ranks\":999999999}\n"}`)) // allocation bomb
	f.Add([]byte(`{"trace":"not a trace","ranks":4}`))
	f.Add([]byte(`{"app":"sample","trace":"{\"mpisim_trace\":1,\"ranks\":2}\n","ranks":4}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`"x"`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			if spec != nil {
				t.Fatalf("DecodeSpec returned both a spec and error %v", err)
			}
			return
		}
		// Whatever decoded must validate and hash without panicking.
		_ = spec.Validate(1 << 16)
		_ = spec.Hash()
		// Normalization must be idempotent, or equal submissions would
		// hash (and so cache) differently depending on replay order.
		h := spec.Hash()
		spec.Normalize()
		if spec.Hash() != h {
			t.Fatalf("Normalize not idempotent: hash changed")
		}
	})
}

// TestSubmitMalformedIs400 pins the HTTP half of the fuzz contract: a
// malformed POST /jobs gets a 400 with a JSON diagnostic, the job table
// stays empty, and the server keeps answering.
func TestSubmitMalformedIs400(t *testing.T) {
	srv := newTestServer(t, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"not json", "ranks=4&app=sample"},
		{"trailing data", `{"app":"sample","ranks":4} extra`},
		{"unknown field", `{"app":"sample","ranks":4,"turbo":true}`},
		{"no workload", `{"ranks":4}`},
		{"both workloads", `{"app":"sample","program":"program p\nproc main(rank)\nend","ranks":4}`},
		{"unknown app", `{"app":"doom","ranks":4}`},
		{"bad mode", `{"app":"sample","ranks":4,"mode":"warp"}`},
		{"zero ranks", `{"app":"sample","ranks":0}`},
		{"server-side file topology", `{"app":"sample","ranks":4,"topology":"graph:/etc/passwd"}`},
		{"negative budget", `{"app":"sample","ranks":4,"limits":{"max_events":-5}}`},
		{"bad program", `{"program":"{{{{","ranks":2}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var diag struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&diag)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if err != nil || diag.Error == "" {
			t.Errorf("%s: 400 body is not a JSON diagnostic (%v)", tc.name, err)
		}
	}
	if n := len(srv.Jobs()); n != 0 {
		t.Fatalf("malformed submissions enqueued %d job(s)", n)
	}
	// And the daemon is still healthy.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after malformed submissions: %d", resp.StatusCode)
	}
}

// TestSubmitOversizedIs400 bounds the request body.
func TestSubmitOversizedIs400(t *testing.T) {
	srv := newTestServer(t, Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	huge := `{"app":"sample","ranks":4,"program":"` + strings.Repeat("x", maxSpecBytes+1024)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte(huge)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized spec: status %d, want 400", resp.StatusCode)
	}
}
