package svc

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCachedVsFresh is the determinism gate for the artifact cache: a
// repeat submission must be answered from the store (Cached=true, same
// content address, no second simulation), and those cached bytes must
// be byte-identical to what a completely fresh daemon in a fresh data
// directory computes for the same spec. AM mode is used deliberately so
// the compile + calibration caches sit in the loop being proven.
func TestCachedVsFresh(t *testing.T) {
	spec := `{"app":"sample","mode":"am","ranks":4,
		"inputs":{"PATTERN":2,"ITERS":50,"WORK":100,"MSG":64}}`

	srvA := newTestServer(t, Options{})
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()

	id1, _, _ := submit(t, tsA, spec)
	v1 := pollUntil(t, tsA, id1, terminal, 60*time.Second)
	if v1.State != JobDone {
		t.Fatalf("first run ended %s (%s)", v1.State, v1.Error)
	}
	if v1.Cached {
		t.Fatal("first run claims to be cached")
	}
	fresh := fetchArtifact(t, tsA, id1)

	id2, _, _ := submit(t, tsA, spec)
	v2 := pollUntil(t, tsA, id2, terminal, 60*time.Second)
	if v2.State != JobDone || !v2.Cached {
		t.Fatalf("repeat submission: state=%s cached=%v, want done/cached", v2.State, v2.Cached)
	}
	if v2.Artifact != v1.Artifact {
		t.Fatalf("cached artifact %s != fresh artifact %s", v2.Artifact, v1.Artifact)
	}
	cached := fetchArtifact(t, tsA, id2)
	if !bytes.Equal(cached, fresh) {
		t.Fatal("cached artifact bytes differ from the fresh run")
	}

	// A brand-new daemon, brand-new directory: same spec, same bytes.
	srvB := newTestServer(t, Options{})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	id3, _, _ := submit(t, tsB, spec)
	v3 := pollUntil(t, tsB, id3, terminal, 60*time.Second)
	if v3.State != JobDone {
		t.Fatalf("fresh-daemon run ended %s (%s)", v3.State, v3.Error)
	}
	other := fetchArtifact(t, tsB, id3)
	if !bytes.Equal(other, fresh) {
		t.Fatal("artifacts differ across independent daemons for the same spec")
	}
	if v3.Artifact != v1.Artifact {
		t.Fatalf("content addresses differ across daemons: %s vs %s", v3.Artifact, v1.Artifact)
	}
}

// TestCacheSurvivesRestart proves the artifact cache is rebuilt from
// the journal: after a clean drain and restart, the same spec is
// answered cached without re-running.
func TestCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv1 := newTestServer(t, Options{Dir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	id1, _, _ := submit(t, ts1, quickSpec())
	v1 := pollUntil(t, ts1, id1, terminal, 30*time.Second)
	if v1.State != JobDone {
		t.Fatalf("run ended %s (%s)", v1.State, v1.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	srv2 := newTestServer(t, Options{Dir: dir})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	// The replayed job is visible with its artifact intact.
	if v := getView(t, ts2, id1); v.State != JobDone || v.Artifact != v1.Artifact {
		t.Fatalf("replayed job: %+v", v)
	}
	if !bytes.Equal(fetchArtifact(t, ts2, id1), fetchArtifact(t, ts2, id1)) {
		t.Fatal("artifact unstable across reads")
	}
	id2, _, _ := submit(t, ts2, quickSpec())
	v2 := pollUntil(t, ts2, id2, terminal, 30*time.Second)
	if v2.State != JobDone || !v2.Cached || v2.Artifact != v1.Artifact {
		t.Fatalf("post-restart repeat: state=%s cached=%v artifact=%s, want cached %s",
			v2.State, v2.Cached, v2.Artifact, v1.Artifact)
	}
}

// TestCrashRecoveryRerun kills the daemon mid-run (simulated SIGKILL:
// journaling stops, no terminal records land) and verifies the next
// start re-runs both the interrupted job and the still-queued one to
// completion, and sweeps the orphaned artifact bytes the dying run left
// in the store.
func TestCrashRecoveryRerun(t *testing.T) {
	dir := t.TempDir()
	srv1 := newTestServer(t, Options{Dir: dir, Concurrency: 1})
	ts1 := httptest.NewServer(srv1.Handler())

	idRun, _, _ := submit(t, ts1, slowSpec(150000))
	pollUntil(t, ts1, idRun, func(v JobView) bool { return v.State == JobRunning }, 10*time.Second)
	idQueued, _, _ := submit(t, ts1, quickSpec())

	srv1.crash()
	ts1.Close()

	// A stray unreferenced blob and a torn temp file, as a crash between
	// a store write and its journal record would leave.
	stray := strings.Repeat("ab", 32)
	if err := os.WriteFile(filepath.Join(dir, casDirName, stray), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, casDirName, tmpPrefix+"x"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := newTestServer(t, Options{Dir: dir, Concurrency: 1, Recover: RecoverRerun})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	if _, err := os.Stat(filepath.Join(dir, casDirName, stray)); !os.IsNotExist(err) {
		t.Error("orphaned artifact not swept on recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, casDirName, tmpPrefix+"x")); !os.IsNotExist(err) {
		t.Error("torn temp file not swept on recovery")
	}

	// The interrupted job re-runs start to finish — determinism means
	// the re-run is the same prediction the killed run would have made —
	// and the queued job runs after it.
	vR := pollUntil(t, ts2, idRun, terminal, 120*time.Second)
	if vR.State != JobDone {
		t.Fatalf("re-run job ended %s (%s), want done", vR.State, vR.Error)
	}
	if vR.Artifact == "" {
		t.Fatal("re-run job has no artifact")
	}
	vQ := pollUntil(t, ts2, idQueued, terminal, 60*time.Second)
	if vQ.State != JobDone {
		t.Fatalf("recovered queued job ended %s (%s), want done", vQ.State, vQ.Error)
	}

	// Every surviving store blob is referenced by the journal.
	entries, err := os.ReadDir(filepath.Join(dir, casDirName))
	if err != nil {
		t.Fatal(err)
	}
	referenced := map[string]bool{}
	for _, v := range srv2.Jobs() {
		if v.Artifact != "" {
			referenced[v.Artifact] = true
		}
	}
	for _, e := range entries {
		if !referenced[e.Name()] {
			t.Errorf("unreferenced blob %s survives recovery", e.Name())
		}
	}
}

// TestCrashRecoveryAbort is the other policy: the interrupted job is
// marked aborted instead of re-run; queued jobs still re-run.
func TestCrashRecoveryAbort(t *testing.T) {
	dir := t.TempDir()
	srv1 := newTestServer(t, Options{Dir: dir, Concurrency: 1})
	ts1 := httptest.NewServer(srv1.Handler())

	idRun, _, _ := submit(t, ts1, slowSpec(500000))
	pollUntil(t, ts1, idRun, func(v JobView) bool { return v.State == JobRunning }, 10*time.Second)
	idQueued, _, _ := submit(t, ts1, quickSpec())
	srv1.crash()
	ts1.Close()

	srv2 := newTestServer(t, Options{Dir: dir, Concurrency: 1, Recover: RecoverAbort})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	vR := getView(t, ts2, idRun)
	if vR.State != JobAborted || !strings.Contains(vR.Error, "interrupted") {
		t.Fatalf("interrupted job: state=%s error=%q, want aborted/interrupted", vR.State, vR.Error)
	}
	vQ := pollUntil(t, ts2, idQueued, terminal, 60*time.Second)
	if vQ.State != JobDone {
		t.Fatalf("recovered queued job ended %s (%s), want done", vQ.State, vQ.Error)
	}
}

// TestJournalTornFinalLine: a crash mid-append leaves a torn last line;
// replay drops it and keeps every intact record, and reopening for
// append truncates the torn fragment so records written by the
// recovered daemon land on a fresh line — a second restart must replay
// cleanly, not reject the journal as corrupt.
func TestJournalTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := DecodeSpec([]byte(`{"app":"sample","ranks":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Record{ID: "j1", State: JobPending, Spec: spec, SpecHash: spec.Hash()}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Record{ID: "j1", State: JobRunning}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":3,"id":"j1","state":"do`) // torn mid-record
	f.Close()

	recs, next, intact, err := ReplayJournal(dir)
	if err != nil {
		t.Fatalf("replay with torn final line: %v", err)
	}
	if len(recs) != 2 || next != 3 {
		t.Fatalf("replay = %d records, next %d; want 2, 3", len(recs), next)
	}
	// A server starts on it, resolving the interrupted job — and its
	// abort record goes after the truncated-away torn fragment.
	srv := newTestServer(t, Options{Dir: dir, Recover: RecoverAbort})
	if v := srv.Jobs(); len(v) != 1 || v[0].State != JobAborted {
		t.Fatalf("recovered jobs = %+v", v)
	}
	if fi, err := os.Stat(filepath.Join(dir, journalName)); err != nil {
		t.Fatal(err)
	} else if fi.Size() <= intact {
		t.Fatalf("journal size %d after recovery append, want > intact prefix %d", fi.Size(), intact)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	// Second restart cycle: the journal must be every-line intact.
	recs2, _, _, err := ReplayJournal(dir)
	if err != nil {
		t.Fatalf("replay after recovery appended past a torn tail: %v", err)
	}
	if n := len(recs2); n != 3 {
		t.Fatalf("second replay = %d records, want 3 (pending, running, aborted)", n)
	}
	if last := recs2[len(recs2)-1]; last.State != JobAborted {
		t.Fatalf("last recovered record state = %s, want aborted", last.State)
	}
}

// TestJournalUnterminatedFinalRecord: a final line that parses but has
// no trailing newline is a torn append (the writer emits record+newline
// in one write); replay drops it and the truncation point excludes it.
func TestJournalUnterminatedFinalRecord(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := DecodeSpec([]byte(`{"app":"sample","ranks":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(&Record{ID: "j1", State: JobPending, Spec: spec, SpecHash: spec.Hash()}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	fi, err := os.Stat(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":2,"id":"j1","state":"running"}`) // valid JSON, newline never landed
	f.Close()

	recs, next, intact, err := ReplayJournal(dir)
	if err != nil {
		t.Fatalf("replay with unterminated final record: %v", err)
	}
	if len(recs) != 1 || next != 2 {
		t.Fatalf("replay = %d records, next %d; want 1, 2", len(recs), next)
	}
	if intact != fi.Size() {
		t.Fatalf("intact prefix = %d, want %d (end of last newline-terminated record)", intact, fi.Size())
	}
	// Reopening truncates the unterminated tail; the next append starts
	// a fresh line and a further replay sees both records intact.
	j2, err := OpenJournal(dir, next, intact, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(&Record{ID: "j1", State: JobAborted, Error: "interrupted"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	recs2, _, _, err := ReplayJournal(dir)
	if err != nil {
		t.Fatalf("replay after truncate+append: %v", err)
	}
	if len(recs2) != 2 || recs2[1].State != JobAborted {
		t.Fatalf("second replay = %+v, want pending then aborted", recs2)
	}
}

// TestJournalMidFileCorruption: a malformed line with intact records
// after it is real corruption, not a torn append; replay must refuse.
func TestJournalMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := DecodeSpec([]byte(`{"app":"sample","ranks":4}`))
	j.Append(&Record{ID: "j1", State: JobPending, Spec: spec})
	j.Close()
	path := filepath.Join(dir, journalName)
	data, _ := os.ReadFile(path)
	data = append([]byte("GARBAGE NOT JSON\n"), data...)
	os.WriteFile(path, data, 0o644)
	if _, _, _, err := ReplayJournal(dir); err == nil {
		t.Fatal("replay accepted mid-file corruption")
	}
}

// TestStoreChecksumVerification: blobs are re-hashed on read; flipped
// bits are corruption, not data.
func TestStoreChecksumVerification(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"report":{"time":1}}`)
	hash, err := st.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	if again, err := st.Put(payload); err != nil || again != hash {
		t.Fatalf("re-put: %s, %v", again, err)
	}
	got, err := st.Get(hash)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("roundtrip: %q, %v", got, err)
	}
	// Flip a byte on disk behind the store's back.
	path := filepath.Join(dir, casDirName, hash)
	data, _ := os.ReadFile(path)
	data[0] ^= 0xff
	os.WriteFile(path, data, 0o644)
	if _, err := st.Get(hash); err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("corrupted read: err=%v, want checksum mismatch", err)
	}
	// Traversal-shaped names never reach the filesystem.
	if _, err := st.Get("../../etc/passwd"); err == nil {
		t.Fatal("path traversal accepted")
	}
}

// TestCalibrationTablePersisted: an AM job persists its w_i table under
// cal/, so a restarted daemon skips calibration for the same context.
func TestCalibrationTablePersisted(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, Options{Dir: dir})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	spec := `{"app":"sample","mode":"am","ranks":4,
		"inputs":{"PATTERN":2,"ITERS":50,"WORK":100,"MSG":64}}`
	id, _, _ := submit(t, ts, spec)
	if v := pollUntil(t, ts, id, terminal, 60*time.Second); v.State != JobDone {
		t.Fatalf("AM run ended %s (%s)", v.State, v.Error)
	}
	entries, err := os.ReadDir(filepath.Join(dir, calDirName))
	if err != nil {
		t.Fatal(err)
	}
	saved := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			saved++
		}
	}
	if saved == 0 {
		t.Fatal("AM run persisted no calibration table")
	}
}
