// Package machine defines the parameterized target-architecture models
// used by the simulator: a computation model (cost per abstract operation
// with a cache working-set factor) and a network model (LogGP-style
// parameters consumed by the mpi layer).
//
// The paper validates on a distributed-memory IBM SP and a shared-memory
// SGI Origin 2000 (whose MPI communication MPI-Sim simulates as message
// passing); presets for both are provided. Absolute constants are
// representative of the late-1990s machines, but the reproduction's claims
// are about *shapes* (who wins, crossover points), which are insensitive
// to the exact values.
package machine

import (
	"fmt"
	"math"
	"strings"
)

// CacheLevel maps a working-set size bound to a slowdown factor relative
// to in-cache execution. Levels must be ordered by increasing Size.
type CacheLevel struct {
	Size   int64   // working sets up to this many bytes hit this level
	Factor float64 // multiplicative cost factor for such working sets
}

// Network holds LogGP-style communication parameters.
type Network struct {
	// Latency is the end-to-end zero-byte message latency in seconds.
	// It is also the simulator's conservative lookahead.
	Latency float64
	// Bandwidth is the sustained point-to-point bandwidth in bytes/second.
	Bandwidth float64
	// SendOverhead and RecvOverhead are CPU occupancy per message
	// (the o parameters of LogP), charged to the sender and receiver.
	SendOverhead float64
	RecvOverhead float64
	// GapPerByte is the per-byte NIC occupancy (the G of LogGP) used by
	// the detailed network model to serialize messages through a node's
	// interface. The analytic model ignores it.
	GapPerByte float64
}

// AnalyticDelay is the simple latency+bandwidth transfer time used by the
// analytic communication model (and by MPI-Sim-DE's communication model).
func (n *Network) AnalyticDelay(size int64) float64 {
	return n.Latency + float64(size)/n.Bandwidth
}

// Validate reports configuration errors.
func (n *Network) Validate() error {
	if n.Latency <= 0 {
		return fmt.Errorf("machine: network latency must be positive")
	}
	if n.Bandwidth <= 0 {
		return fmt.Errorf("machine: network bandwidth must be positive")
	}
	if n.SendOverhead < 0 {
		return fmt.Errorf("machine: network send overhead must not be negative")
	}
	if n.RecvOverhead < 0 {
		return fmt.Errorf("machine: network receive overhead must not be negative")
	}
	if n.GapPerByte < 0 {
		return fmt.Errorf("machine: network gap per byte must not be negative")
	}
	return nil
}

// Model is a complete target machine description.
type Model struct {
	Name string
	// OpTime is the cost in seconds of one abstract operation (roughly a
	// floating-point operation with its associated loads/stores) when the
	// working set fits in the nearest cache.
	OpTime float64
	// Caches is the working-set factor table; working sets larger than
	// the last level use MemFactor.
	Caches []CacheLevel
	// MemFactor applies when the working set exceeds all cache levels.
	MemFactor float64
	// Net describes the interconnect.
	Net Network
	// MemoryPerHost is the usable memory per host processor in bytes; it
	// bounds what the direct-execution simulator can allocate (the paper's
	// "memory requirements of the direct execution model restricted the
	// largest target architecture that could be simulated").
	MemoryPerHost int64
	// Topology selects the interconnect topology simulated by
	// internal/net ("flat", "bus", "torus:dims=4x4", "fattree:k=4",
	// "graph:cfg.json"). Empty or "flat" keeps the analytic network
	// model, byte-identical to a build without topology support.
	Topology string
	// Placement selects the rank→host placement policy used with a
	// non-flat Topology ("block", "roundrobin", "random:SEED"); empty
	// means block.
	Placement string
}

// Validate reports configuration errors.
func (m *Model) Validate() error {
	if m.OpTime <= 0 {
		return fmt.Errorf("machine %s: OpTime must be positive", m.Name)
	}
	if m.MemFactor < 1 {
		return fmt.Errorf("machine %s: MemFactor must be >= 1", m.Name)
	}
	var prev int64
	for i, c := range m.Caches {
		if c.Size <= prev {
			return fmt.Errorf("machine %s: cache level %d not increasing", m.Name, i)
		}
		if c.Factor < 1 {
			return fmt.Errorf("machine %s: cache level %d factor < 1", m.Name, i)
		}
		prev = c.Size
	}
	return m.Net.Validate()
}

// memSaturation is the multiple of the last cache level's size at which
// the factor reaches MemFactor (working sets this far beyond the cache
// get no further locality benefit).
const memSaturation = 8

// CacheFactor returns the slowdown factor for a per-process working set
// of the given size. This is the nonlinearity that the compiler's linear
// scaling functions deliberately do not capture (paper §3.3), and hence
// the principal source of MPI-SIM-AM prediction error. The factor is
// log-linear between cache levels, as real working-set curves are
// gradual rather than cliffs.
func (m *Model) CacheFactor(workingSet int64) float64 {
	if len(m.Caches) == 0 {
		return m.MemFactor
	}
	if workingSet <= m.Caches[0].Size {
		return m.Caches[0].Factor
	}
	interp := func(ws, s0 int64, f0 float64, s1 int64, f1 float64) float64 {
		t := math.Log(float64(ws)/float64(s0)) / math.Log(float64(s1)/float64(s0))
		return f0 + t*(f1-f0)
	}
	for i := 0; i+1 < len(m.Caches); i++ {
		if workingSet <= m.Caches[i+1].Size {
			return interp(workingSet, m.Caches[i].Size, m.Caches[i].Factor,
				m.Caches[i+1].Size, m.Caches[i+1].Factor)
		}
	}
	last := m.Caches[len(m.Caches)-1]
	sat := last.Size * memSaturation
	if workingSet >= sat {
		return m.MemFactor
	}
	return interp(workingSet, last.Size, last.Factor, sat, m.MemFactor)
}

// ComputeTime returns the execution time of ops abstract operations over
// a working set of the given size.
func (m *Model) ComputeTime(ops float64, workingSet int64) float64 {
	return ops * m.OpTime * m.CacheFactor(workingSet)
}

// IBMSP returns a model of the distributed-memory IBM SP used for the
// Tomcatv, Sweep3D and NAS SP validations (paper §4.1).
func IBMSP() *Model {
	return &Model{
		Name:   "IBM-SP",
		OpTime: 6e-9, // ~160 Mflop/s sustained per P2SC node
		Caches: []CacheLevel{
			{Size: 96 << 10, Factor: 1.0}, // 128KB L1, conservatively 96KB usable
			{Size: 2 << 20, Factor: 1.15},
		},
		MemFactor: 1.40,
		Net: Network{
			Latency:      4.0e-5, // ~40us MPI latency on the SP switch
			Bandwidth:    9.0e7,  // ~90 MB/s
			SendOverhead: 8e-6,
			RecvOverhead: 8e-6,
			GapPerByte:   1.0 / 1.1e8,
		},
		MemoryPerHost: 256 << 20, // 256 MB per SP node, as in late-90s configs
	}
}

// Origin2000 returns a model of the shared-memory SGI Origin 2000 used
// for the SAMPLE experiments. MPI-Sim simulates its MPI library's message
// passing, not hardware shared memory, so only MPI-level parameters are
// modeled.
func Origin2000() *Model {
	return &Model{
		Name:   "SGI-Origin-2000",
		OpTime: 3.5e-9, // R10000 @195MHz, ~280 Mflop/s sustained
		Caches: []CacheLevel{
			{Size: 32 << 10, Factor: 1.0},
			{Size: 4 << 20, Factor: 1.10},
		},
		MemFactor: 1.30,
		Net: Network{
			Latency:      1.2e-5, // MPI over ccNUMA interconnect
			Bandwidth:    1.4e8,
			SendOverhead: 3e-6,
			RecvOverhead: 3e-6,
			GapPerByte:   1.0 / 1.8e8,
		},
		MemoryPerHost: 512 << 20,
	}
}

// Cluster returns a model of a commodity workstation cluster on switched
// fast Ethernet — a late-1990s Beowulf. Not used in the paper's
// evaluation, but a common target for MPI-Sim users; its much higher
// latency shifts every communication-sensitive crossover, which makes it
// useful for studying how the paper's conclusions depend on the machine.
func Cluster() *Model {
	return &Model{
		Name:   "Beowulf-Cluster",
		OpTime: 4.5e-9, // ~220 Mflop/s commodity node
		Caches: []CacheLevel{
			{Size: 16 << 10, Factor: 1.0},
			{Size: 512 << 10, Factor: 1.20},
		},
		MemFactor: 1.55,
		Net: Network{
			Latency:      1.2e-4, // 120us TCP/IP over fast Ethernet
			Bandwidth:    1.1e7,  // ~11 MB/s
			SendOverhead: 3e-5,
			RecvOverhead: 3e-5,
			GapPerByte:   1.0 / 1.2e7,
		},
		MemoryPerHost: 128 << 20,
	}
}

// Names lists the preset model names accepted by ByName, in display
// order (canonical name first in each row of Presets).
func Names() []string { return []string{"ibmsp", "origin2000", "cluster"} }

// Presets returns one instance of every preset model, in Names order.
func Presets() []*Model {
	return []*Model{IBMSP(), Origin2000(), Cluster()}
}

// ByName returns a preset model.
func ByName(name string) (*Model, error) {
	switch name {
	case "ibmsp", "sp", "IBM-SP":
		return IBMSP(), nil
	case "origin2000", "origin", "SGI-Origin-2000":
		return Origin2000(), nil
	case "cluster", "beowulf", "Beowulf-Cluster":
		return Cluster(), nil
	}
	return nil, fmt.Errorf("machine: unknown model %q (available: %s)",
		name, strings.Join(Names(), ", "))
}
