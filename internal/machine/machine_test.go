package machine

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPresetsValid(t *testing.T) {
	for _, m := range []*Model{IBMSP(), Origin2000()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ibmsp", "sp", "IBM-SP", "origin2000", "origin", "SGI-Origin-2000"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("cray-t3e"); err == nil {
		t.Error("expected error for unknown machine")
	}
}

func TestCacheFactorMonotone(t *testing.T) {
	m := IBMSP()
	sizes := []int64{1, 1 << 10, 96 << 10, 97 << 10, 2 << 20, (2 << 20) + 1, 1 << 30}
	prev := 0.0
	for _, s := range sizes {
		f := m.CacheFactor(s)
		if f < prev {
			t.Fatalf("CacheFactor not monotone at %d: %v < %v", s, f, prev)
		}
		prev = f
	}
	if m.CacheFactor(1) != 1.0 {
		t.Fatalf("small working set should be factor 1")
	}
	if m.CacheFactor(1<<30) != m.MemFactor {
		t.Fatalf("huge working set should use MemFactor")
	}
}

func TestComputeTimeScalesLinearlyInOps(t *testing.T) {
	m := Origin2000()
	a := m.ComputeTime(1e6, 1024)
	b := m.ComputeTime(2e6, 1024)
	if b != 2*a {
		t.Fatalf("ComputeTime not linear in ops: %v vs %v", a, b)
	}
}

func TestComputeTimeCacheEffect(t *testing.T) {
	m := IBMSP()
	small := m.ComputeTime(1e6, 1<<10)
	big := m.ComputeTime(1e6, 1<<30)
	if big <= small {
		t.Fatalf("out-of-cache time (%v) must exceed in-cache (%v)", big, small)
	}
}

func TestAnalyticDelay(t *testing.T) {
	n := &Network{Latency: 1e-5, Bandwidth: 1e8}
	if got := n.AnalyticDelay(0); got != 1e-5 {
		t.Fatalf("zero-byte delay = %v, want latency", got)
	}
	if got := n.AnalyticDelay(1e8); got != 1e-5+1 {
		t.Fatalf("1e8-byte delay = %v, want %v", got, 1e-5+1)
	}
}

func TestAnalyticDelayMonotoneQuick(t *testing.T) {
	n := IBMSP().Net
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return n.AnalyticDelay(x) <= n.AnalyticDelay(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Model{
		{Name: "no-op-time", MemFactor: 1, Net: Network{Latency: 1, Bandwidth: 1}},
		{Name: "bad-memfactor", OpTime: 1, MemFactor: 0.5, Net: Network{Latency: 1, Bandwidth: 1}},
		{Name: "bad-cache-order", OpTime: 1, MemFactor: 1,
			Caches: []CacheLevel{{Size: 100, Factor: 1}, {Size: 50, Factor: 1}},
			Net:    Network{Latency: 1, Bandwidth: 1}},
		{Name: "bad-cache-factor", OpTime: 1, MemFactor: 1,
			Caches: []CacheLevel{{Size: 100, Factor: 0.5}},
			Net:    Network{Latency: 1, Bandwidth: 1}},
		{Name: "no-latency", OpTime: 1, MemFactor: 1, Net: Network{Bandwidth: 1}},
		{Name: "no-bandwidth", OpTime: 1, MemFactor: 1, Net: Network{Latency: 1}},
		{Name: "neg-send-overhead", OpTime: 1, MemFactor: 1,
			Net: Network{Latency: 1, Bandwidth: 1, SendOverhead: -1e-6}},
		{Name: "neg-recv-overhead", OpTime: 1, MemFactor: 1,
			Net: Network{Latency: 1, Bandwidth: 1, RecvOverhead: -1e-6}},
		{Name: "neg-gap", OpTime: 1, MemFactor: 1,
			Net: Network{Latency: 1, Bandwidth: 1, GapPerByte: -1e-9}},
	}
	for _, m := range cases {
		m := m
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.Name)
		}
	}
}

func TestByNameErrorListsPresets(t *testing.T) {
	_, err := ByName("cray-t3e")
	if err == nil {
		t.Fatal("expected error")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-machine error should list %q: %v", name, err)
		}
	}
	if len(Presets()) != len(Names()) {
		t.Fatalf("Presets has %d entries, Names %d", len(Presets()), len(Names()))
	}
	for i, m := range Presets() {
		if m.Name == "" {
			t.Errorf("preset %d has no name", i)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("preset %s: %v", m.Name, err)
		}
	}
}

func TestClusterPreset(t *testing.T) {
	m := Cluster()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("cluster"); err != nil {
		t.Fatal(err)
	}
	// The cluster's latency must dwarf the SP's: that is its point.
	if m.Net.Latency <= IBMSP().Net.Latency {
		t.Fatal("cluster should have higher latency than the SP")
	}
}

func TestCacheFactorSmooth(t *testing.T) {
	// The working-set curve must be continuous-ish: no step larger than
	// 10% between adjacent sample points (log-linear interpolation).
	m := IBMSP()
	prev := m.CacheFactor(1 << 10)
	for ws := int64(1 << 10); ws <= 64<<20; ws = ws * 5 / 4 {
		f := m.CacheFactor(ws)
		if f < prev {
			t.Fatalf("factor not monotone at %d", ws)
		}
		if f/prev > 1.10 {
			t.Fatalf("factor cliff at %d: %v -> %v", ws, prev, f)
		}
		prev = f
	}
	if got := m.CacheFactor(1 << 30); got != m.MemFactor {
		t.Fatalf("saturated factor = %v, want %v", got, m.MemFactor)
	}
}

func TestCacheFactorNoCaches(t *testing.T) {
	m := &Model{Name: "flat", OpTime: 1, MemFactor: 2,
		Net: Network{Latency: 1, Bandwidth: 1}}
	if m.CacheFactor(1) != 2 {
		t.Fatal("model without caches must use MemFactor")
	}
}
