package cliutil

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mpisim/internal/obs"
)

func TestFormatRunStatus(t *testing.T) {
	s := obs.RunStatus{
		State:     obs.RunRunning,
		Percent:   0.25,
		ETANs:     int64(90 * time.Second),
		Virtual:   12.5,
		Events:    1000,
		ElapsedNs: int64(30 * time.Second),
	}
	line := FormatRunStatus(s)
	for _, want := range []string{"running", "25.0%", "eta 1m30s", "1000 events", "wall 30s"} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q: %s", want, line)
		}
	}
	// Unknown horizon: no percent, no ETA.
	line = FormatRunStatus(obs.RunStatus{State: obs.RunRunning, Percent: -1, Virtual: 1})
	if strings.Contains(line, "%") || strings.Contains(line, "eta") {
		t.Errorf("line should omit percent/eta without a horizon: %s", line)
	}
	line = FormatRunStatus(obs.RunStatus{State: obs.RunAborted, Percent: -1, AbortReason: "watchdog"})
	if !strings.Contains(line, "aborted: watchdog") {
		t.Errorf("line missing abort reason: %s", line)
	}
}

func TestStartProgressPrintsFinalLine(t *testing.T) {
	ri := obs.NewRunInfo()
	ri.SetState(obs.RunRunning)
	ri.Heartbeat(3.5, 42)
	var b bytes.Buffer
	stop := StartProgress(&b, ri, time.Hour) // ticker never fires; stop prints
	ri.Finish(obs.RunDone, 3.5, "")
	stop()
	out := b.String()
	if !strings.Contains(out, "progress: done") || !strings.Contains(out, "42 events") {
		t.Errorf("final progress line wrong: %q", out)
	}
}
