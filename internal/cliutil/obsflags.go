package cliutil

import (
	"fmt"
	"os"

	"mpisim/internal/obs"
)

// OpenTraceFile creates path and returns a tracer writing to it in the
// given format ("chrome" for trace_event JSON loadable by Perfetto and
// chrome://tracing, "jsonl" for one JSON object per line). The returned
// finish function closes the tracer and the file, reporting the first
// error from either; call it exactly once after the final event.
func OpenTraceFile(path, format string) (*obs.Tracer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	var sink obs.Sink
	switch format {
	case "chrome":
		sink = obs.NewChromeSink(f)
	case "jsonl":
		sink = obs.NewJSONLSink(f)
	default:
		f.Close()
		os.Remove(path)
		return nil, nil, fmt.Errorf("unknown trace format %q (want chrome or jsonl)", format)
	}
	t := obs.NewTracer(sink)
	finish := func() error {
		err := t.Close()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return t, finish, nil
}
