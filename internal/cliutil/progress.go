package cliutil

import (
	"fmt"
	"io"
	"time"

	"mpisim/internal/obs"
)

// FormatRunStatus renders one progress line for a run snapshot: state,
// percent-complete and ETA when the horizon is known, plus virtual time
// and committed events. It is the line -progress prints to stderr.
func FormatRunStatus(s obs.RunStatus) string {
	line := string(s.State)
	if s.Percent >= 0 {
		line += fmt.Sprintf(" %5.1f%%", 100*s.Percent)
		if s.ETANs > 0 {
			line += fmt.Sprintf(" eta %s", (time.Duration(s.ETANs)).Round(time.Second))
		}
	}
	line += fmt.Sprintf(" | virtual %s, %d events", FormatSeconds(s.Virtual), s.Events)
	if s.ElapsedNs > 0 {
		line += fmt.Sprintf(", wall %s", (time.Duration(s.ElapsedNs)).Round(time.Second))
	}
	if s.AbortReason != "" {
		line += fmt.Sprintf(" (aborted: %s)", s.AbortReason)
	}
	return line
}

// StartProgress prints a progress line for ri to w every interval until
// the returned stop function is called. Stop prints one final line so
// the terminal always ends on the run's closing state. Interval <= 0
// defaults to 2s.
func StartProgress(w io.Writer, ri *obs.RunInfo, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintf(w, "progress: %s\n", FormatRunStatus(ri.Status()))
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		fmt.Fprintf(w, "progress: %s\n", FormatRunStatus(ri.Status()))
	}
}
