package cliutil

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseInputs(t *testing.T) {
	got, err := ParseInputs("N=2048, ITER=100,EPS=1e-6")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"N": 2048, "ITER": 100, "EPS": 1e-6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	if m, err := ParseInputs("  "); err != nil || len(m) != 0 {
		t.Fatalf("empty parse: %v %v", m, err)
	}
	for _, bad := range []string{"N", "N=", "=3", "N=abc", "N=1,=2"} {
		if _, err := ParseInputs(bad); err == nil {
			t.Errorf("ParseInputs(%q): expected error", bad)
		}
	}
}

func TestMergeInputs(t *testing.T) {
	a := map[string]float64{"N": 1, "X": 2}
	b := map[string]float64{"N": 9}
	got := MergeInputs(a, b)
	if got["N"] != 9 || got["X"] != 2 {
		t.Fatalf("merge = %v", got)
	}
	if a["N"] != 1 {
		t.Fatal("merge mutated input")
	}
}

func TestTaskTimesRoundTrip(t *testing.T) {
	tt := map[string]float64{"w_1": 1.5e-8, "w_2": 3.25e-7, "w_10": 2e-9}
	var buf bytes.Buffer
	if err := WriteTaskTimes(&buf, tt); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTaskTimes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tt) {
		t.Fatalf("round trip: %v != %v", got, tt)
	}
}

func TestReadTaskTimesComments(t *testing.T) {
	in := "# calibrated on 16 ranks\n\nw_1 2e-8\n"
	got, err := ReadTaskTimes(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["w_1"] != 2e-8 {
		t.Fatalf("got %v", got)
	}
	for _, bad := range []string{"w_1", "w_1 x", "w_1 1 2"} {
		if _, err := ReadTaskTimes(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadTaskTimes(%q): expected error", bad)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		2.5:     "2.5 s",
		1e-3:    "1 ms",
		4.2e-6:  "4.2 us",
		3.3e-10: "0.33 ns",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:           "512 B",
		2048:          "2.00 KiB",
		3 << 20:       "3.00 MiB",
		5 * (1 << 30): "5.00 GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestOpenTraceFile(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"chrome", "jsonl"} {
		path := filepath.Join(dir, "out."+format)
		tr, done, err := OpenTraceFile(path, format)
		if err != nil {
			t.Fatal(err)
		}
		tr.Instant(1, 0, "test", "tick", 0.5)
		if err := done(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "tick") {
			t.Errorf("%s trace missing event: %q", format, data)
		}
	}
	if _, _, err := OpenTraceFile(filepath.Join(dir, "bad"), "xml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}
