// Package cliutil holds the small amount of parsing and formatting shared
// by the command-line tools: "key=value,key=value" input lists and the
// task-time (w_i) table file format produced by cmd/calibrate and
// consumed by cmd/mpisim.
package cliutil

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseInputs parses "N=2048,ITER=100" into an input map.
func ParseInputs(s string) (map[string]float64, error) {
	out := map[string]float64{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 || parts[0] == "" {
			return nil, fmt.Errorf("cliutil: bad input %q (want key=value)", kv)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: bad value in %q: %v", kv, err)
		}
		out[parts[0]] = v
	}
	return out, nil
}

// MergeInputs overlays b on a (b wins), returning a new map.
func MergeInputs(a, b map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// WriteTaskTimes writes a w_i table as "name value" lines, sorted.
func WriteTaskTimes(w io.Writer, tt map[string]float64) error {
	names := make([]string, 0, len(tt))
	for n := range tt {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %.12e\n", n, tt[n]); err != nil {
			return err
		}
	}
	return nil
}

// ReadTaskTimes parses a table written by WriteTaskTimes. Blank lines and
// lines starting with '#' are ignored.
func ReadTaskTimes(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("cliutil: line %d: want \"name value\", got %q", line, text)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: line %d: %v", line, err)
		}
		out[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatSeconds renders a duration in engineering style.
func FormatSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.4g s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.4g ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.4g us", s*1e6)
	}
	return fmt.Sprintf("%.4g ns", s*1e9)
}

// FormatBytes renders a byte count in binary units.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}
