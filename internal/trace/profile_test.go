package trace

import (
	"bytes"
	"compress/gzip"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func profileFixture() *Artifact {
	a := artifactAt("app", []RankBreakdown{
		{PureCompute: 4, Delay: 2, CommCPU: 0.5, Blocked: 1},
		{PureCompute: 3, Delay: 2, CommCPU: 0.5, Blocked: 0.5},
		{PureCompute: 3.5, Delay: 1, CommCPU: 0.25, Blocked: 2},
	}, map[string]float64{"w_1": 3.5, "w_2": 1.5})
	a.TaskLines = map[string]int{"w_1": 12, "w_2": 19}
	a.TaskHeads = map[string]string{"w_1": "for i = 1..n", "w_2": "halo exchange"}
	return a
}

// TestProfileComponentTotalsMatchAttribute pins the acceptance
// criterion: each component's sample sum equals the ns-rounded per-rank
// breakdown sums that trace.Attribute decomposes.
func TestProfileComponentTotalsMatchAttribute(t *testing.T) {
	a := profileFixture()
	p, err := BuildProfile(a)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	var finishNs int64
	for i := range a.Report.Ranks {
		b := breakdown(a, i)
		want[compPure] += ns(b.PureCompute)
		want[compDelay] += ns(b.Delay)
		want[compCommCPU] += ns(b.CommCPU)
		want[compBlocked] += ns(b.Blocked)
		want[compFault] += ns(b.Fault)
		want[compNet] += ns(b.Net)
		finishNs += ns(b.Finish)
	}
	got := p.ComponentTotals()
	for comp, w := range want {
		if got[comp] != w {
			t.Errorf("component %q: profile %d ns, breakdown %d ns", comp, got[comp], w)
		}
	}
	// The attribution identity: the profile covers every finish ns.
	var sum int64
	for _, v := range want {
		sum += v
	}
	if p.TotalNs() != sum {
		t.Fatalf("profile total %d ns, component sum %d ns", p.TotalNs(), sum)
	}
	if p.TotalNs() != finishNs {
		t.Fatalf("profile total %d ns, finish sum %d ns", p.TotalNs(), finishNs)
	}
}

// TestProfileDelayRoundingReconciled engineers a task table whose
// ns-rounded sum disagrees with the per-rank delay total and checks the
// remainder is reconciled rather than lost.
func TestProfileDelayRoundingReconciled(t *testing.T) {
	a := artifactAt("app", []RankBreakdown{
		{PureCompute: 1, Delay: 1.0000000004, CommCPU: 0, Blocked: 0},
	}, map[string]float64{"w_1": 0.3333333333, "w_2": 0.6666666671})
	p, err := BuildProfile(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.ComponentTotals()[compDelay], ns(1.0000000004); got != want {
		t.Fatalf("delay total %d ns, want %d", got, want)
	}
}

func TestProfileFoldedStacks(t *testing.T) {
	p, err := BuildProfile(profileFixture())
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := p.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"app;rank 0;pure compute 4000000000\n",
		"app;delay;task w_1 (line 12: for i = 1..n) 3500000000\n",
		"app;delay;task w_2 (line 19: halo exchange) 1500000000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two renders are identical.
	var b2 bytes.Buffer
	_ = p.WriteFolded(&b2)
	if b.String() != b2.String() {
		t.Fatal("folded output not deterministic")
	}
}

func TestProfilePprofIsGzippedProto(t *testing.T) {
	p, err := BuildProfile(profileFixture())
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := p.WritePprof(&b); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&b)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(zr); err != nil {
		t.Fatal(err)
	}
	if raw.Len() == 0 {
		t.Fatal("empty profile body")
	}
	// The string table travels in the wire bytes; spot-check anchors.
	for _, want := range []string{"virtual", "nanoseconds", "pure compute", "task w_1 (line 12: for i = 1..n)"} {
		if !bytes.Contains(raw.Bytes(), []byte(want)) {
			t.Errorf("profile body missing string %q", want)
		}
	}
}

// TestProfileParsesWithGoToolPprof runs the real consumer over an
// emitted profile; skipped when no go binary is on PATH.
func TestProfileParsesWithGoToolPprof(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go binary on PATH")
	}
	a := profileFixture()
	path := filepath.Join(t.TempDir(), "prof.pb.gz")
	if err := WriteProfileFile(path, a); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "tool", "pprof", "-top", "-nodecount=20", path)
	cmd.Env = append(os.Environ(), "PPROF_NO_BROWSER=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -top failed: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"virtual", "pure compute", "delay"} {
		if !strings.Contains(text, want) {
			t.Errorf("pprof -top output missing %q:\n%s", want, text)
		}
	}
}
