// Package trace renders the predicted execution of a simulated program
// as a per-rank activity timeline and utilization summary, from the
// segments collected by the mpi layer (Config.CollectTrace). It gives
// the simulated equivalent of the timeline views contemporary MPI
// performance tools (Jumpshot, VAMPIR) provided for real executions —
// except here the timeline is of the *predicted* run, so bottlenecks can
// be inspected before the machine exists.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"mpisim/internal/mpi"
)

// glyphs for the timeline, indexed by mpi.SegKind.
var glyphs = [...]byte{
	mpi.SegCompute: '#',
	mpi.SegDelay:   '=',
	mpi.SegBlocked: '.',
	mpi.SegComm:    '+',
	mpi.SegFault:   '!',
	mpi.SegNet:     '~',
}

// Timeline renders each rank's activity over [0, rep.Time] as a row of
// width columns: '#' executed computation, '=' abstracted computation
// (delays), '+' communication CPU, '.' blocked, '!' fault-attributed
// time, '~' waiting on network contention, ' ' idle/untraced. The glyph
// for a column is the kind occupying the largest share of it.
func Timeline(rep *mpi.Report, width int) (string, error) {
	if rep.Traces == nil {
		return "", fmt.Errorf("trace: report has no traces (run with CollectTrace)")
	}
	if width < 10 {
		width = 10
	}
	if rep.Time <= 0 {
		return "", fmt.Errorf("trace: empty simulation")
	}
	var sb strings.Builder
	sb.WriteString("predicted timeline ('#' compute, '=' delay, '+' comm, '.' blocked, '!' fault, '~' net, ' ' idle)\n")
	fmt.Fprintf(&sb, "0s %s %.4gs\n", strings.Repeat("-", width-2), rep.Time)
	scale := float64(width) / rep.Time
	for rank, segs := range rep.Traces {
		// Per-column occupancy per kind.
		occ := make([][6]float64, width)
		for _, s := range segs {
			// Clamp both column indices into [0, width-1]: floating-point
			// rounding can push a segment ending (or, for the final event,
			// starting) at rep.Time to column == width, which previously
			// dropped it from the last column.
			lo := int(s.Start * scale)
			hi := int(s.End * scale)
			if lo >= width {
				lo = width - 1
			}
			if lo < 0 {
				lo = 0
			}
			if hi >= width {
				hi = width - 1
			}
			credited := false
			for c := lo; c <= hi; c++ {
				cLo := float64(c) / scale
				cHi := float64(c+1) / scale
				overlap := minF(s.End, cHi) - maxF(s.Start, cLo)
				if overlap > 0 {
					occ[c][s.Kind] += overlap
					credited = true
				}
			}
			// An ulp-wide segment at a column boundary can compute zero
			// overlap everywhere; never let a nonzero segment vanish.
			if !credited && s.End > s.Start {
				occ[hi][s.Kind] += s.End - s.Start
			}
		}
		row := make([]byte, width)
		for c := range row {
			row[c] = ' '
			best := 0.0
			for k, v := range occ[c] {
				if v > best {
					best = v
					row[c] = glyphs[k]
				}
			}
		}
		fmt.Fprintf(&sb, "%4d|%s|\n", rank, row)
	}
	return sb.String(), nil
}

// Utilization summarizes, per activity kind, the fraction of total
// rank-time spent in it.
type Utilization struct {
	// Fraction[kind] is the share of aggregate rank-time in that kind;
	// the remainder is idle/untraced.
	Fraction map[mpi.SegKind]float64
	// PerRank[i][kind] is rank i's share.
	PerRank []map[mpi.SegKind]float64
}

// Utilize computes the utilization breakdown of a traced report.
func Utilize(rep *mpi.Report) (*Utilization, error) {
	if rep.Traces == nil {
		return nil, fmt.Errorf("trace: report has no traces (run with CollectTrace)")
	}
	if rep.Time <= 0 {
		return nil, fmt.Errorf("trace: empty simulation")
	}
	u := &Utilization{
		Fraction: map[mpi.SegKind]float64{},
		PerRank:  make([]map[mpi.SegKind]float64, len(rep.Traces)),
	}
	total := rep.Time * float64(len(rep.Traces))
	for i, segs := range rep.Traces {
		per := map[mpi.SegKind]float64{}
		for _, s := range segs {
			per[s.Kind] += s.End - s.Start
		}
		u.PerRank[i] = map[mpi.SegKind]float64{}
		for k, v := range per {
			u.PerRank[i][k] = v / rep.Time
			u.Fraction[k] += v / total
		}
	}
	return u, nil
}

// Summary renders the utilization as one line per kind, sorted by share.
func (u *Utilization) Summary() string {
	type kv struct {
		k mpi.SegKind
		v float64
	}
	var kvs []kv
	for k, v := range u.Fraction {
		kvs = append(kvs, kv{k, v})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].v != kvs[j].v {
			return kvs[i].v > kvs[j].v
		}
		return kvs[i].k < kvs[j].k
	})
	var sb strings.Builder
	for _, e := range kvs {
		fmt.Fprintf(&sb, "%-8s %6.2f%%\n", e.k, 100*e.v)
	}
	return sb.String()
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
