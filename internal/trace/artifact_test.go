package trace

import (
	"path/filepath"
	"strings"
	"testing"

	"mpisim/internal/mpi"
	"mpisim/internal/sim"
)

func abortedArtifact() *Artifact {
	rep := &mpi.Report{
		Time:        2.5,
		Partial:     true,
		AbortReason: "event budget exhausted: 1000000 events committed",
		Ranks: []mpi.RankStats{{
			ProcStats: sim.ProcStats{ComputeTime: 2, BlockedTime: 0.5, FinishTime: 2.5},
		}},
	}
	return &Artifact{App: "app", Mode: "MPI-SIM", Progress: 0.42, Report: rep}
}

// TestPartialWarningIncludesProgress pins the mpireport warning
// contract: an aborted fixture round-trips through the artifact file
// and its warning carries the shortened reason plus the last-snapshot
// progress percentage.
func TestPartialWarningIncludesProgress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "aborted.json")
	if err := WriteArtifact(path, abortedArtifact()); err != nil {
		t.Fatal(err)
	}
	a, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Partial || a.AbortReason == "" {
		t.Fatalf("round-trip lost partial status: %+v", a)
	}
	if a.Progress != 0.42 {
		t.Fatalf("round-trip lost progress: %g", a.Progress)
	}
	w := PartialWarning(path, a)
	for _, want := range []string{
		"partial run",
		"aborted: event budget exhausted",
		"~42% complete at abort",
		"understates the full execution",
	} {
		if !strings.Contains(w, want) {
			t.Errorf("warning missing %q:\n%s", want, w)
		}
	}
	if strings.Contains(w, "1000000 events") {
		t.Errorf("warning should shorten the reason at ':':\n%s", w)
	}
}

func TestPartialWarningWithoutProgress(t *testing.T) {
	a := abortedArtifact()
	a.Partial = true
	a.AbortReason = "watchdog"
	a.Progress = 0
	w := PartialWarning("x.json", a)
	if strings.Contains(w, "% complete") {
		t.Errorf("warning should omit progress when unknown:\n%s", w)
	}
	if !strings.Contains(w, "aborted: watchdog)") {
		t.Errorf("warning should keep a colon-free reason whole:\n%s", w)
	}
	if PartialWarning("x.json", &Artifact{Report: a.Report}) != "" {
		t.Error("non-partial artifact should produce no warning")
	}
}
