package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Scaling-loss attribution: given two run artifacts of the same program
// at different configurations, decompose the predicted-time delta into
// where the time went — pure computation, abstracted computation
// (delays), communication CPU and blocking — per rank and per condensed
// task / listing line. This is the ScalAna-style answer to "we scaled
// from P to Q ranks and only got X: why?", computed from predicted
// executions, before the machine exists.

// RankBreakdown is the exact decomposition of one rank's finish time:
// Finish = PureCompute + Delay + CommCPU + Blocked + Fault + Net, where
// PureCompute is directly executed computation (ComputeTime net of
// delays, communication CPU and fault CPU, which the kernel folds into
// it), Blocked is genuine waiting net of the fault- and
// contention-explained portions, Fault is all time attributed to
// injected faults (retransmission CPU and waits, compute-slowdown
// excess, fault-delayed arrivals), and Net is receive wait explained by
// interconnect contention (topology runs only).
type RankBreakdown struct {
	Rank        int     `json:"rank"`
	Finish      float64 `json:"finish"`
	PureCompute float64 `json:"pure_compute"`
	Delay       float64 `json:"delay"`
	CommCPU     float64 `json:"comm_cpu"`
	Blocked     float64 `json:"blocked"`
	Fault       float64 `json:"fault,omitempty"`
	Net         float64 `json:"net,omitempty"`
}

// RankDelta is the per-rank component change between two runs with equal
// rank counts.
type RankDelta struct {
	Rank        int     `json:"rank"`
	Finish      float64 `json:"finish"`
	PureCompute float64 `json:"pure_compute"`
	Delay       float64 `json:"delay"`
	CommCPU     float64 `json:"comm_cpu"`
	Blocked     float64 `json:"blocked"`
	Fault       float64 `json:"fault,omitempty"`
	Net         float64 `json:"net,omitempty"`
}

// TaskDelta is the change in per-rank mean delay seconds attributed to
// one condensed task, anchored to its listing line when known.
type TaskDelta struct {
	Task   string  `json:"task"`
	Line   int     `json:"line,omitempty"`
	Head   string  `json:"head,omitempty"`
	Base   float64 `json:"base_seconds"`
	Target float64 `json:"target_seconds"`
	Delta  float64 `json:"delta_seconds"`
}

// Attribution is the full scaling-loss report between a base and a
// target configuration.
type Attribution struct {
	App         string `json:"app,omitempty"`
	BaseRanks   int    `json:"base_ranks"`
	TargetRanks int    `json:"target_ranks"`

	BaseTime   float64 `json:"base_time"`
	TargetTime float64 `json:"target_time"`
	// Delta is TargetTime - BaseTime; negative means the target config
	// is faster.
	Delta float64 `json:"delta"`
	// Ideal is the perfectly-scaled expectation BaseTime * BaseRanks /
	// TargetRanks, and Loss the shortfall TargetTime - Ideal (>0 means
	// scaling loss).
	Ideal float64 `json:"ideal"`
	Loss  float64 `json:"loss"`

	// Base / Target decompose the critical rank (the one whose finish
	// time is the predicted time) of each run. DeltaCompute etc. are the
	// component-wise differences; they sum exactly to Delta.
	Base         RankBreakdown `json:"base"`
	Target       RankBreakdown `json:"target"`
	DeltaCompute float64       `json:"delta_compute"`
	DeltaDelay   float64       `json:"delta_delay"`
	DeltaCommCPU float64       `json:"delta_comm_cpu"`
	DeltaBlocked float64       `json:"delta_blocked"`
	DeltaFault   float64       `json:"delta_fault,omitempty"`
	DeltaNet     float64       `json:"delta_net,omitempty"`

	// PerRank is populated when both runs have the same rank count.
	PerRank []RankDelta `json:"per_rank,omitempty"`
	// Tasks breaks the per-rank mean delay change down per condensed
	// task, sorted by |Delta| descending. Only populated when at least
	// one run recorded DelayByTask (simplified-program runs).
	Tasks []TaskDelta `json:"tasks,omitempty"`
}

// breakdown decomposes rank i of an artifact's report. The fault CPU
// (FaultTime net of its blocked portion) is folded into ComputeTime by
// the kernel, and the fault- and contention-explained waits into
// BlockedTime, so all three are subtracted out to keep the components
// disjoint and exactly summing.
func breakdown(a *Artifact, i int) RankBreakdown {
	rs := a.Report.Ranks[i]
	faultCPU := rs.FaultTime - rs.FaultBlocked
	return RankBreakdown{
		Rank:        i,
		Finish:      float64(rs.FinishTime),
		PureCompute: float64(rs.ComputeTime - rs.DelayTime - rs.CommCPUTime - faultCPU),
		Delay:       float64(rs.DelayTime),
		CommCPU:     float64(rs.CommCPUTime),
		Blocked:     float64(rs.BlockedTime - rs.FaultBlocked - rs.NetBlocked),
		Fault:       float64(rs.FaultTime),
		Net:         float64(rs.NetBlocked),
	}
}

// criticalRank returns the index of the rank whose finish time is the
// report's predicted time (the first at the maximum).
func criticalRank(a *Artifact) int {
	best, bi := -1.0, 0
	for i := range a.Report.Ranks {
		if f := float64(a.Report.Ranks[i].FinishTime); f > best {
			best, bi = f, i
		}
	}
	return bi
}

// Attribute computes the scaling-loss attribution from base to target.
// Both artifacts need per-rank statistics (always present); the
// per-task table additionally needs DelayByTask (simplified runs).
func Attribute(base, target *Artifact) (*Attribution, error) {
	if base.Report == nil || target.Report == nil {
		return nil, fmt.Errorf("trace: attribution needs two artifacts with reports")
	}
	if len(base.Report.Ranks) == 0 || len(target.Report.Ranks) == 0 {
		return nil, fmt.Errorf("trace: attribution needs per-rank statistics")
	}
	at := &Attribution{
		App:         base.App,
		BaseRanks:   len(base.Report.Ranks),
		TargetRanks: len(target.Report.Ranks),
		BaseTime:    base.Report.Time,
		TargetTime:  target.Report.Time,
	}
	at.Delta = at.TargetTime - at.BaseTime
	if at.TargetRanks > 0 {
		at.Ideal = at.BaseTime * float64(at.BaseRanks) / float64(at.TargetRanks)
		at.Loss = at.TargetTime - at.Ideal
	}
	at.Base = breakdown(base, criticalRank(base))
	at.Target = breakdown(target, criticalRank(target))
	at.DeltaCompute = at.Target.PureCompute - at.Base.PureCompute
	at.DeltaDelay = at.Target.Delay - at.Base.Delay
	at.DeltaCommCPU = at.Target.CommCPU - at.Base.CommCPU
	at.DeltaBlocked = at.Target.Blocked - at.Base.Blocked
	at.DeltaFault = at.Target.Fault - at.Base.Fault
	at.DeltaNet = at.Target.Net - at.Base.Net

	if at.BaseRanks == at.TargetRanks {
		at.PerRank = make([]RankDelta, at.BaseRanks)
		for i := 0; i < at.BaseRanks; i++ {
			b, t := breakdown(base, i), breakdown(target, i)
			at.PerRank[i] = RankDelta{
				Rank:        i,
				Finish:      t.Finish - b.Finish,
				PureCompute: t.PureCompute - b.PureCompute,
				Delay:       t.Delay - b.Delay,
				CommCPU:     t.CommCPU - b.CommCPU,
				Blocked:     t.Blocked - b.Blocked,
				Fault:       t.Fault - b.Fault,
				Net:         t.Net - b.Net,
			}
		}
	}

	// Per-task delay attribution, normalized to per-rank means so runs
	// at different rank counts compare like-for-like.
	names := map[string]bool{}
	for task := range base.Report.DelayByTask {
		names[task] = true
	}
	for task := range target.Report.DelayByTask {
		names[task] = true
	}
	for task := range names {
		td := TaskDelta{
			Task:   task,
			Base:   base.Report.DelayByTask[task] / float64(at.BaseRanks),
			Target: target.Report.DelayByTask[task] / float64(at.TargetRanks),
		}
		td.Delta = td.Target - td.Base
		if line, ok := target.TaskLines[task]; ok {
			td.Line = line
			td.Head = target.TaskHeads[task]
		} else if line, ok := base.TaskLines[task]; ok {
			td.Line = line
			td.Head = base.TaskHeads[task]
		}
		at.Tasks = append(at.Tasks, td)
	}
	sort.Slice(at.Tasks, func(i, j int) bool {
		di, dj := math.Abs(at.Tasks[i].Delta), math.Abs(at.Tasks[j].Delta)
		if di != dj {
			return di > dj
		}
		return at.Tasks[i].Task < at.Tasks[j].Task
	})
	return at, nil
}

// secs formats a signed duration compactly.
func secs(v float64) string {
	return fmt.Sprintf("%+.4gs", v)
}

// Text renders the attribution as a human-readable report. topN bounds
// the per-task and per-rank tables (0 = all).
func (at *Attribution) Text(topN int) string {
	var sb strings.Builder
	name := at.App
	if name == "" {
		name = "program"
	}
	fmt.Fprintf(&sb, "scaling-loss attribution: %s, %d -> %d ranks\n",
		name, at.BaseRanks, at.TargetRanks)
	fmt.Fprintf(&sb, "  predicted time %.6gs -> %.6gs (delta %s)\n",
		at.BaseTime, at.TargetTime, secs(at.Delta))
	if at.Ideal > 0 && at.TargetRanks != at.BaseRanks {
		fmt.Fprintf(&sb, "  ideal scaling %.6gs, loss %s\n", at.Ideal, secs(at.Loss))
	}
	sb.WriteString("  critical-rank decomposition (component deltas sum to the time delta):\n")
	fmt.Fprintf(&sb, "    %-14s %12s %12s %12s\n", "component", "base", "target", "delta")
	row := func(label string, b, t, d float64) {
		fmt.Fprintf(&sb, "    %-14s %12.6g %12.6g %12s\n", label, b, t, secs(d))
	}
	row("pure compute", at.Base.PureCompute, at.Target.PureCompute, at.DeltaCompute)
	row("delay", at.Base.Delay, at.Target.Delay, at.DeltaDelay)
	row("comm cpu", at.Base.CommCPU, at.Target.CommCPU, at.DeltaCommCPU)
	row("blocked", at.Base.Blocked, at.Target.Blocked, at.DeltaBlocked)
	if at.Base.Fault != 0 || at.Target.Fault != 0 {
		row("fault", at.Base.Fault, at.Target.Fault, at.DeltaFault)
	}
	if at.Base.Net != 0 || at.Target.Net != 0 {
		row("net contention", at.Base.Net, at.Target.Net, at.DeltaNet)
	}
	fmt.Fprintf(&sb, "    (critical rank %d -> %d)\n", at.Base.Rank, at.Target.Rank)

	if len(at.Tasks) > 0 {
		sb.WriteString("  per-task delay (per-rank mean seconds, by |delta|):\n")
		n := len(at.Tasks)
		if topN > 0 && topN < n {
			n = topN
		}
		for _, td := range at.Tasks[:n] {
			loc := ""
			if td.Line > 0 {
				loc = fmt.Sprintf(" (line %d: %s)", td.Line, td.Head)
			}
			fmt.Fprintf(&sb, "    %-8s %12.6g -> %12.6g  %s%s\n",
				td.Task, td.Base, td.Target, secs(td.Delta), loc)
		}
		if n < len(at.Tasks) {
			fmt.Fprintf(&sb, "    ... %d more task(s)\n", len(at.Tasks)-n)
		}
	}
	if len(at.PerRank) > 0 {
		sb.WriteString("  per-rank deltas (finish = compute + delay + comm + blocked + fault + net):\n")
		ranks := make([]RankDelta, len(at.PerRank))
		copy(ranks, at.PerRank)
		sort.Slice(ranks, func(i, j int) bool {
			return math.Abs(ranks[i].Finish) > math.Abs(ranks[j].Finish)
		})
		n := len(ranks)
		if topN > 0 && topN < n {
			n = topN
		}
		for _, rd := range ranks[:n] {
			fmt.Fprintf(&sb, "    rank %-4d finish %s  compute %s  delay %s  comm %s  blocked %s",
				rd.Rank, secs(rd.Finish), secs(rd.PureCompute), secs(rd.Delay),
				secs(rd.CommCPU), secs(rd.Blocked))
			if rd.Fault != 0 {
				fmt.Fprintf(&sb, "  fault %s", secs(rd.Fault))
			}
			if rd.Net != 0 {
				fmt.Fprintf(&sb, "  net %s", secs(rd.Net))
			}
			sb.WriteByte('\n')
		}
		if n < len(ranks) {
			fmt.Fprintf(&sb, "    ... %d more rank(s)\n", len(ranks)-n)
		}
	}
	return sb.String()
}

// WriteJSON writes the attribution as indented JSON.
func (at *Attribution) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(at)
}
