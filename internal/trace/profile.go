package trace

import (
	"compress/gzip"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Virtual-time profiler: fold one run artifact's per-rank attribution
// components (the exact decomposition of breakdown: Finish =
// PureCompute + Delay + CommCPU + Blocked + Fault + Net) into a
// pprof-compatible profile.proto, so predicted executions can be
// explored with go tool pprof and rendered as flamegraphs before the
// machine exists. The sample unit is virtual nanoseconds; stacks are
//
//	<app> ; rank N ; <component>          (per-rank components)
//	<app> ; delay ; task T (line L: head) (abstracted computation,
//	                                       anchored to the listing line
//	                                       via compiler.TaskLines)
//
// Component totals match trace.Attribute exactly: each component's
// sample values sum to the ns-rounded per-rank breakdown sums (the
// delay task split is adjusted by its rounding remainder so it, too,
// preserves the total).
//
// The encoder writes the profile.proto wire format by hand (plus gzip
// from the standard library) to keep the repo dependency-free.

// Profile is a built virtual-time profile, ready to serialize.
type Profile struct {
	app        string
	durationNs int64
	samples    []profSample
	// totals holds the per-component ns sums, matching breakdown.
	totals map[string]int64
}

// profFrame is one stack frame: a display name plus an optional listing
// anchor.
type profFrame struct {
	name string
	file string
	line int64
}

// profSample is one stack with its virtual-ns value. Stacks are stored
// leaf-first, as profile.proto expects.
type profSample struct {
	stack     []profFrame
	value     int64
	component string
}

// Component frame names, matching the labels of Attribution.Text.
const (
	compPure    = "pure compute"
	compDelay   = "delay"
	compCommCPU = "comm cpu"
	compBlocked = "blocked"
	compFault   = "fault"
	compNet     = "net contention"
)

// ns rounds seconds to integer nanoseconds.
func ns(seconds float64) int64 {
	return int64(math.Round(seconds * 1e9))
}

// BuildProfile folds the artifact's per-rank breakdowns into a profile.
// Delay is attributed per condensed task (with listing lines from
// TaskLines) when the report carries DelayByTask, per rank otherwise.
func BuildProfile(a *Artifact) (*Profile, error) {
	if a.Report == nil || len(a.Report.Ranks) == 0 {
		return nil, fmt.Errorf("trace: profile needs an artifact with per-rank statistics")
	}
	app := a.App
	if app == "" {
		app = "program"
	}
	p := &Profile{
		app:        app,
		durationNs: ns(a.Report.Time),
		totals:     map[string]int64{},
	}
	root := profFrame{name: app}
	perTaskDelay := len(a.Report.DelayByTask) > 0

	var delayTotal int64
	for i := range a.Report.Ranks {
		b := breakdown(a, i)
		rank := profFrame{name: fmt.Sprintf("rank %d", i)}
		add := func(component string, seconds float64) {
			v := ns(seconds)
			if v == 0 {
				return
			}
			p.add(profSample{
				stack:     []profFrame{{name: component}, rank, root},
				value:     v,
				component: component,
			})
		}
		add(compPure, b.PureCompute)
		add(compCommCPU, b.CommCPU)
		add(compBlocked, b.Blocked)
		add(compFault, b.Fault)
		add(compNet, b.Net)
		if perTaskDelay {
			delayTotal += ns(b.Delay)
		} else {
			add(compDelay, b.Delay)
		}
	}

	if perTaskDelay {
		p.addDelayByTask(a, root, delayTotal)
	}
	return p, nil
}

// addDelayByTask splits the delay component over condensed tasks,
// anchored to listing lines. The per-task ns roundings are reconciled
// against the per-rank delay total so the component still sums exactly
// to the breakdown sums.
func (p *Profile) addDelayByTask(a *Artifact, root profFrame, delayTotal int64) {
	tasks := make([]string, 0, len(a.Report.DelayByTask))
	for task := range a.Report.DelayByTask {
		tasks = append(tasks, task)
	}
	sort.Strings(tasks)
	delayFrame := profFrame{name: compDelay}
	vals := make([]int64, len(tasks))
	var sum int64
	for i, task := range tasks {
		vals[i] = ns(a.Report.DelayByTask[task])
		sum += vals[i]
	}
	// Rounding reconciliation: spread the remainder so the task split
	// sums to the per-rank delay total. A positive remainder becomes an
	// explicit unattributed sample; a negative one (at most a few ns) is
	// taken from the largest task values.
	rem := delayTotal - sum
	for rem < 0 {
		bi := 0
		for i, v := range vals {
			if v > vals[bi] {
				bi = i
			}
		}
		take := -rem
		if take > vals[bi] {
			take = vals[bi]
		}
		if take == 0 {
			break
		}
		vals[bi] -= take
		rem += take
	}
	for i, task := range tasks {
		if vals[i] == 0 {
			continue
		}
		tf := profFrame{name: "task " + task}
		if line, ok := a.TaskLines[task]; ok && line > 0 {
			tf.line = int64(line)
			tf.file = p.app + ".listing"
			if head := a.TaskHeads[task]; head != "" {
				tf.name = fmt.Sprintf("task %s (line %d: %s)", task, line, head)
			} else {
				tf.name = fmt.Sprintf("task %s (line %d)", task, line)
			}
		}
		p.add(profSample{
			stack:     []profFrame{tf, delayFrame, root},
			value:     vals[i],
			component: compDelay,
		})
	}
	if rem > 0 {
		p.add(profSample{
			stack:     []profFrame{{name: "delay (unattributed)"}, delayFrame, root},
			value:     rem,
			component: compDelay,
		})
	}
}

func (p *Profile) add(s profSample) {
	p.samples = append(p.samples, s)
	p.totals[s.component] += s.value
}

// ComponentTotals returns the per-component virtual-ns sums of the
// profile's samples. By construction each equals the ns-rounded sum of
// that component over the per-rank breakdowns trace.Attribute uses.
func (p *Profile) ComponentTotals() map[string]int64 {
	out := make(map[string]int64, len(p.totals))
	for k, v := range p.totals {
		out[k] = v
	}
	return out
}

// TotalNs returns the sum of all sample values.
func (p *Profile) TotalNs() int64 {
	var t int64
	for _, s := range p.samples {
		t += s.value
	}
	return t
}

// WriteFolded writes the profile as folded stacks (root;...;leaf value
// per line), the input format of flamegraph tooling. Lines are sorted
// for deterministic output.
func (p *Profile) WriteFolded(w io.Writer) error {
	lines := make([]string, 0, len(p.samples))
	for _, s := range p.samples {
		var names []string
		for i := len(s.stack) - 1; i >= 0; i-- {
			names = append(names, s.stack[i].name)
		}
		line := ""
		for i, n := range names {
			if i > 0 {
				line += ";"
			}
			line += n
		}
		lines = append(lines, fmt.Sprintf("%s %d", line, s.value))
	}
	sort.Strings(lines)
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// WritePprof writes the profile as gzip-compressed profile.proto.
func (p *Profile) WritePprof(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(p.encodeProto()); err != nil {
		return err
	}
	return zw.Close()
}

// WriteProfileFile builds the artifact's profile and writes it as
// path (gzip profile.proto).
func WriteProfileFile(path string, a *Artifact) error {
	p, err := BuildProfile(a)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WritePprof(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- profile.proto wire encoding ----------------------------------------
//
// Minimal hand-rolled protobuf writer for the subset of
// github.com/google/pprof/proto/profile.proto this profile uses:
//
//	Profile:  1 sample_type (ValueType), 2 sample (Sample),
//	          4 location (Location), 5 function (Function),
//	          6 string_table, 10 duration_nanos, 11 period_type, 12 period
//	ValueType: 1 type, 2 unit (string-table indices)
//	Sample:   1 location_id (packed uint64), 2 value (packed int64)
//	Location: 1 id, 4 line (Line)
//	Line:     1 function_id, 2 line
//	Function: 1 id, 2 name, 3 system_name, 4 filename, 5 start_line

// pbuf accumulates protobuf wire bytes.
type pbuf struct {
	b []byte
}

func (p *pbuf) uvarint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// tag writes a field key. wire 0 = varint, 2 = length-delimited.
func (p *pbuf) tag(field, wire int) {
	p.uvarint(uint64(field)<<3 | uint64(wire))
}

// varint writes a varint-typed field, omitting the proto3 zero default.
func (p *pbuf) varint(field int, v int64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.uvarint(uint64(v))
}

func (p *pbuf) bytes(field int, data []byte) {
	p.tag(field, 2)
	p.uvarint(uint64(len(data)))
	p.b = append(p.b, data...)
}

func (p *pbuf) str(field int, s string) {
	p.tag(field, 2)
	p.uvarint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packed writes a packed repeated varint field (skipped when empty).
func (p *pbuf) packed(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner pbuf
	for _, v := range vs {
		inner.uvarint(v)
	}
	p.bytes(field, inner.b)
}

// encodeProto builds the uncompressed profile.proto message.
func (p *Profile) encodeProto() []byte {
	// String table: index 0 must be "".
	strIdx := map[string]int64{"": 0}
	strs := []string{""}
	intern := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strIdx[s] = i
		strs = append(strs, s)
		return i
	}

	// Functions and locations: one location per distinct frame, with a
	// single line record pointing at its function. IDs start at 1.
	type funcRec struct {
		id         uint64
		name, file int64
		line       int64
	}
	frameKey := func(f profFrame) string {
		return fmt.Sprintf("%s\x00%s\x00%d", f.name, f.file, f.line)
	}
	locIdx := map[string]uint64{}
	var funcs []funcRec
	locOf := func(f profFrame) uint64 {
		key := frameKey(f)
		if id, ok := locIdx[key]; ok {
			return id
		}
		id := uint64(len(funcs) + 1)
		funcs = append(funcs, funcRec{
			id:   id,
			name: intern(f.name),
			file: intern(f.file),
			line: f.line,
		})
		locIdx[key] = id
		return id
	}

	var samples pbuf
	for _, s := range p.samples {
		var sm pbuf
		ids := make([]uint64, len(s.stack))
		for i, f := range s.stack {
			ids[i] = locOf(f)
		}
		sm.packed(1, ids)
		sm.packed(2, []uint64{uint64(s.value)})
		samples.bytes(2, sm.b)
	}

	var out pbuf
	// sample_type: one dimension, virtual nanoseconds.
	var vt pbuf
	vt.varint(1, intern("virtual"))
	vt.varint(2, intern("nanoseconds"))
	out.bytes(1, vt.b)
	out.b = append(out.b, samples.b...)
	for _, f := range funcs {
		// Location {id, line: [{function_id, line}]}.
		var ln pbuf
		ln.varint(1, int64(f.id))
		ln.varint(2, f.line)
		var loc pbuf
		loc.varint(1, int64(f.id))
		loc.bytes(4, ln.b)
		out.bytes(4, loc.b)
	}
	for _, f := range funcs {
		var fn pbuf
		fn.varint(1, int64(f.id))
		fn.varint(2, f.name)
		fn.varint(3, f.name)
		fn.varint(4, f.file)
		fn.varint(5, f.line)
		out.bytes(5, fn.b)
	}
	// period_type: built before the string table is emitted so any
	// interning it does still lands in the table.
	var pt pbuf
	pt.varint(1, intern("virtual"))
	pt.varint(2, intern("nanoseconds"))
	for _, s := range strs {
		out.str(6, s)
	}
	out.varint(10, p.durationNs)
	out.bytes(11, pt.b)
	out.varint(12, 1)
	return out.b
}
