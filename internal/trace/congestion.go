package trace

import (
	"fmt"
	"sort"
	"strings"

	"mpisim/internal/mpi"
)

// Congestion renders the network-hotspot section of a topology-mode
// report: the run's topology and placement, aggregate routed/node-local
// traffic, the most contended links (already sorted by contention wait
// in Report.Net), and the ranks that spent the most receive time blocked
// on contention — the NetBlocked figure the attribution identity folds
// out of Blocked. topN bounds both tables (0 = all). Returns "" for flat
// runs (Report.Net == nil).
func Congestion(rep *mpi.Report, topN int) string {
	st := rep.Net
	if st == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "network congestion: %s, placement %s (%d hosts, %d links)\n",
		st.Topology, st.Placement, st.Hosts, st.LinkCount)
	fmt.Fprintf(&sb, "  routed %d msgs / %d bytes, node-local %d msgs / %d bytes, total contention wait %.4gs\n",
		st.InterMsgs, st.InterBytes, st.IntraMsgs, st.IntraBytes, st.Wait)

	if len(st.Links) > 0 {
		sb.WriteString("  hottest links (by contention wait):\n")
		fmt.Fprintf(&sb, "    %-18s %8s %12s %10s %10s %6s\n",
			"link", "msgs", "bytes", "busy", "wait", "util")
		n := len(st.Links)
		if topN > 0 && topN < n {
			n = topN
		}
		for _, l := range st.Links[:n] {
			fmt.Fprintf(&sb, "    %-18s %8d %12d %10.4g %10.4g %5.1f%%\n",
				l.Name, l.Msgs, l.Bytes, l.Busy, l.Wait, 100*l.Utilization)
		}
		if n < len(st.Links) {
			fmt.Fprintf(&sb, "    ... %d more link(s)\n", len(st.Links)-n)
		}
	}

	type rankWait struct {
		rank int
		wait float64
	}
	var rw []rankWait
	for i, rs := range rep.Ranks {
		if rs.NetBlocked > 0 {
			rw = append(rw, rankWait{i, float64(rs.NetBlocked)})
		}
	}
	if len(rw) > 0 {
		sort.Slice(rw, func(i, j int) bool {
			if rw[i].wait != rw[j].wait {
				return rw[i].wait > rw[j].wait
			}
			return rw[i].rank < rw[j].rank
		})
		sb.WriteString("  ranks blocked on contention (the 'net' attribution component):\n")
		n := len(rw)
		if topN > 0 && topN < n {
			n = topN
		}
		for _, e := range rw[:n] {
			fmt.Fprintf(&sb, "    rank %-4d %.4gs\n", e.rank, e.wait)
		}
		if n < len(rw) {
			fmt.Fprintf(&sb, "    ... %d more rank(s)\n", len(rw)-n)
		}
	}
	return sb.String()
}
