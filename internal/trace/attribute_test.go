package trace

import (
	"math"
	"strings"
	"testing"

	"mpisim/internal/mpi"
	"mpisim/internal/sim"
)

// artifactAt builds an artifact with the given per-rank component times.
// Each rank's stats satisfy Finish = Compute + Blocked with
// Compute = pure + delay + commCPU, as the kernel accounts them.
func artifactAt(app string, ranks []RankBreakdown, delayByTask map[string]float64) *Artifact {
	rep := &mpi.Report{DelayByTask: delayByTask}
	for _, rb := range ranks {
		comp := sim.Time(rb.PureCompute + rb.Delay + rb.CommCPU)
		fin := comp + sim.Time(rb.Blocked)
		rep.Ranks = append(rep.Ranks, mpi.RankStats{
			ProcStats:   sim.ProcStats{ComputeTime: comp, BlockedTime: sim.Time(rb.Blocked), FinishTime: fin},
			DelayTime:   sim.Time(rb.Delay),
			CommCPUTime: sim.Time(rb.CommCPU),
		})
		if float64(fin) > rep.Time {
			rep.Time = float64(fin)
		}
	}
	return &Artifact{App: app, Ranks: len(ranks), PredictedTime: rep.Time, Report: rep}
}

func TestAttributeDecomposesDeltaExactly(t *testing.T) {
	base := artifactAt("app", []RankBreakdown{
		{PureCompute: 4, Delay: 2, CommCPU: 0.5, Blocked: 1},   // finish 7.5 (critical)
		{PureCompute: 3, Delay: 2, CommCPU: 0.5, Blocked: 0.5}, // finish 6
	}, map[string]float64{"w_1": 3, "w_2": 1})
	target := artifactAt("app", []RankBreakdown{
		{PureCompute: 4, Delay: 1, CommCPU: 1, Blocked: 4},   // finish 10 (critical)
		{PureCompute: 3, Delay: 1, CommCPU: 1, Blocked: 0.5}, // finish 5.5
	}, map[string]float64{"w_1": 1.5, "w_2": 0.5})

	at, err := Attribute(base, target)
	if err != nil {
		t.Fatal(err)
	}
	if at.BaseTime != 7.5 || at.TargetTime != 10 {
		t.Fatalf("times %g -> %g, want 7.5 -> 10", at.BaseTime, at.TargetTime)
	}
	sum := at.DeltaCompute + at.DeltaDelay + at.DeltaCommCPU + at.DeltaBlocked
	if math.Abs(sum-at.Delta) > 1e-12 {
		t.Fatalf("component deltas sum to %g, want %g", sum, at.Delta)
	}
	if at.DeltaBlocked != 3 {
		t.Fatalf("DeltaBlocked = %g, want 3", at.DeltaBlocked)
	}
	if len(at.PerRank) != 2 {
		t.Fatalf("PerRank len = %d, want 2 (equal rank counts)", len(at.PerRank))
	}
	if at.PerRank[0].Finish != 2.5 || at.PerRank[1].Finish != -0.5 {
		t.Fatalf("per-rank finish deltas = %+v", at.PerRank)
	}
	// Tasks sorted by |delta| descending: w_1 changed by -0.75/rank,
	// w_2 by -0.25/rank.
	if len(at.Tasks) != 2 || at.Tasks[0].Task != "w_1" {
		t.Fatalf("task order = %+v", at.Tasks)
	}
	if math.Abs(at.Tasks[0].Delta+0.75) > 1e-12 {
		t.Fatalf("w_1 delta = %g, want -0.75", at.Tasks[0].Delta)
	}
}

func TestAttributeDifferentRankCounts(t *testing.T) {
	base := artifactAt("app", []RankBreakdown{
		{PureCompute: 8, Blocked: 0},
		{PureCompute: 8, Blocked: 0},
	}, map[string]float64{"w_1": 16})
	target := artifactAt("app", []RankBreakdown{
		{PureCompute: 4, Blocked: 2},
		{PureCompute: 4, Blocked: 2},
		{PureCompute: 4, Blocked: 2},
		{PureCompute: 4, Blocked: 2},
	}, map[string]float64{"w_1": 16})

	at, err := Attribute(base, target)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal: 8 * 2/4 = 4; actual 6 -> loss 2, entirely blocked growth.
	if at.Ideal != 4 || at.Loss != 2 {
		t.Fatalf("ideal=%g loss=%g, want 4 and 2", at.Ideal, at.Loss)
	}
	if at.PerRank != nil {
		t.Fatal("PerRank must be empty for unequal rank counts")
	}
	// Per-rank mean delay: 16/2=8 base, 16/4=4 target.
	if at.Tasks[0].Base != 8 || at.Tasks[0].Target != 4 {
		t.Fatalf("task means = %+v", at.Tasks[0])
	}
}

func TestAttributionTextAndJSON(t *testing.T) {
	base := artifactAt("sweep3d", []RankBreakdown{{PureCompute: 2, Delay: 1, Blocked: 1}}, map[string]float64{"w_1": 1})
	target := artifactAt("sweep3d", []RankBreakdown{{PureCompute: 2, Delay: 1, Blocked: 3}}, map[string]float64{"w_1": 1})
	base.TaskLines = map[string]int{"w_1": 5}
	base.TaskHeads = map[string]string{"w_1": "do i = 1, n"}
	at, err := Attribute(base, target)
	if err != nil {
		t.Fatal(err)
	}
	txt := at.Text(10)
	for _, want := range []string{"sweep3d", "blocked", "w_1", "line 5", "do i = 1, n"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text report missing %q:\n%s", want, txt)
		}
	}
	var sb strings.Builder
	if err := at.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"delta_blocked": 2`) {
		t.Errorf("JSON missing blocked delta:\n%s", sb.String())
	}
}

func TestAttributeErrors(t *testing.T) {
	ok := artifactAt("x", []RankBreakdown{{PureCompute: 1}}, nil)
	if _, err := Attribute(&Artifact{}, ok); err == nil {
		t.Fatal("expected error for artifact without report")
	}
	if _, err := Attribute(ok, &Artifact{Report: &mpi.Report{}}); err == nil {
		t.Fatal("expected error for report without ranks")
	}
}
