package trace

import (
	"strings"
	"testing"

	"mpisim/internal/interp"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
)

// tracedRun runs a small two-rank program with tracing.
func tracedRun(t *testing.T) *mpi.Report {
	t.Helper()
	myid := ir.S(ir.BuiltinMyID)
	p := &ir.Program{
		Name:   "traced",
		Arrays: []*ir.ArrayDecl{{Name: "D", Dims: []ir.Expr{ir.N(64)}, Elem: 8}},
		Body: ir.Block(
			ir.Loop("work", "i", ir.N(1), ir.N(5000),
				ir.SetA("D", ir.IX(ir.Add(ir.Mod(ir.S("i"), ir.N(64)), ir.N(1))), ir.S("i"))),
			&ir.If{Cond: ir.EQ(myid, ir.N(0)), Then: ir.Block(
				&ir.Send{Dest: ir.N(1), Tag: 1, Array: "D", Section: ir.Sec(ir.N(1), ir.N(64))})},
			&ir.If{Cond: ir.EQ(myid, ir.N(1)), Then: ir.Block(
				&ir.Recv{Src: ir.N(0), Tag: 1, Array: "D", Section: ir.Sec(ir.N(1), ir.N(64))})},
		),
	}
	rep, err := interp.Run(p, interp.Config{
		Ranks: 2, Machine: machine.IBMSP(), Comm: mpi.Detailed,
		Inputs: map[string]float64{}, CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSegmentsCoverActivity(t *testing.T) {
	rep := tracedRun(t)
	if rep.Traces == nil || len(rep.Traces) != 2 {
		t.Fatal("traces missing")
	}
	for rank, segs := range rep.Traces {
		if len(segs) == 0 {
			t.Fatalf("rank %d has no segments", rank)
		}
		var last float64
		var total float64
		for _, s := range segs {
			if s.End <= s.Start {
				t.Fatalf("rank %d: empty segment %+v", rank, s)
			}
			if s.Start < last {
				t.Fatalf("rank %d: segments overlap/out of order", rank)
			}
			last = s.End
			total += s.End - s.Start
		}
		// Activity must account for most of the rank's span.
		if total < 0.9*float64(rep.Ranks[rank].FinishTime) {
			t.Fatalf("rank %d: segments cover %.3g of %.3g",
				rank, total, rep.Ranks[rank].FinishTime)
		}
	}
}

func TestTimelineRender(t *testing.T) {
	rep := tracedRun(t)
	out, err := Timeline(rep, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("timeline missing compute glyph:\n%s", out)
	}
	// Rank 1 blocks waiting for rank 0's message only if it arrives
	// after its compute; both ranks compute equally so blocking is tiny.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, scale, 2 ranks
		t.Fatalf("timeline lines = %d:\n%s", len(lines), out)
	}
	// Minimum width enforcement.
	if _, err := Timeline(rep, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineErrors(t *testing.T) {
	if _, err := Timeline(&mpi.Report{}, 40); err == nil {
		t.Fatal("expected error for untraced report")
	}
	if _, err := Timeline(&mpi.Report{Traces: [][]mpi.Segment{}}, 40); err == nil {
		t.Fatal("expected error for empty simulation")
	}
}

func TestUtilization(t *testing.T) {
	rep := tracedRun(t)
	u, err := Utilize(rep)
	if err != nil {
		t.Fatal(err)
	}
	if u.Fraction[mpi.SegCompute] <= 0.5 {
		t.Errorf("compute fraction = %v, expected dominant", u.Fraction[mpi.SegCompute])
	}
	sum := 0.0
	for _, v := range u.Fraction {
		sum += v
	}
	if sum > 1.0001 {
		t.Errorf("fractions sum to %v > 1", sum)
	}
	s := u.Summary()
	if !strings.Contains(s, "compute") || !strings.Contains(s, "%") {
		t.Errorf("summary:\n%s", s)
	}
	if _, err := Utilize(&mpi.Report{}); err == nil {
		t.Fatal("expected error for untraced report")
	}
}

func TestDelaySegments(t *testing.T) {
	// An AM-style run: delays must show as '=' segments.
	p := &ir.Program{
		Name: "delayed",
		Body: ir.Block(
			&ir.ReadTaskTimes{Names: []string{"w_1"}},
			&ir.Delay{Seconds: ir.Mul(ir.S("w_1"), ir.N(1e6)), Task: "w_1"},
		),
	}
	rep, err := interp.Run(p, interp.Config{
		Ranks: 1, Machine: machine.IBMSP(), Comm: mpi.Analytic,
		Inputs:       map[string]float64{},
		TaskTimes:    map[string]float64{"w_1": 1e-8},
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Timeline(rep, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=") {
		t.Fatalf("delay glyph missing:\n%s", out)
	}
	u, _ := Utilize(rep)
	if u.Fraction[mpi.SegDelay] < 0.9 {
		t.Fatalf("delay fraction = %v", u.Fraction[mpi.SegDelay])
	}
}
