package trace

import (
	"fmt"

	"mpisim/internal/mpi"
	"mpisim/internal/obs"
)

// Export writes the simulated plane of a traced report to an obs.Tracer:
// per-rank activity spans (compute/delay/blocked/comm), message edges as
// flow events carrying src/dst/tag/bytes, and collective operations as
// async phase intervals. Together with the kernel's live simulator-plane
// tracks (sim.Config.Tracer) this yields a two-plane Chrome trace: pid 1
// is the simulated target on the virtual-time axis, pid 2 the simulator
// itself on the same axis.
//
// The report must have been collected with Config.CollectTrace.
func Export(t *obs.Tracer, rep *mpi.Report) error {
	if rep.Traces == nil {
		return fmt.Errorf("trace: report has no traces (run with CollectTrace)")
	}
	t.Meta(obs.PlaneSimulated, -1, "target (virtual time)")
	for rank := range rep.Traces {
		t.Meta(obs.PlaneSimulated, rank, fmt.Sprintf("rank %d", rank))
	}
	for rank, segs := range rep.Traces {
		for _, s := range segs {
			t.Span(obs.PlaneSimulated, rank, "activity", s.Kind.String(),
				s.Start, s.End-s.Start)
		}
	}
	// Message edges: one flow per received message, from the sender's
	// issue time to the receiver's arrival. Flow ids only need to be
	// unique per (s, f) pair, so a running counter suffices.
	var flowID uint64
	for rank, evs := range rep.CommEvents {
		for _, ev := range evs {
			flowID++
			// Every transfer in this simulator is eager/buffered (Send
			// returns after the sender overhead); the mode annotation makes
			// the exported stream self-describing for replay consumers.
			args := []obs.Arg{
				obs.Num("src", float64(ev.From)),
				obs.Num("dst", float64(rank)),
				obs.Num("tag", float64(ev.Tag)),
				obs.Num("bytes", float64(ev.Size)),
				obs.Str("mode", "eager"),
			}
			// Topology runs annotate routed messages with their hop count
			// and contention wait; flat runs emit the seed args unchanged.
			if ev.Hops > 0 {
				args = append(args,
					obs.Num("hops", float64(ev.Hops)),
					obs.Num("net_wait", ev.NetWait))
			}
			t.Flow(obs.PlaneSimulated, flowID, "msg", "p2p",
				ev.From, ev.SendTime, rank, ev.Arrival, args...)
		}
	}
	// Collective phases as async intervals: id encodes (rank, ordinal)
	// so concurrent phases on one rank track never collide.
	for rank, phases := range rep.CollPhases {
		for n, ph := range phases {
			id := uint64(rank)<<20 | uint64(n)
			t.Async(obs.PlaneSimulated, rank, id, "collective", ph.Name,
				ph.Start, ph.End, obs.Num("bytes", float64(ph.Bytes)))
		}
	}
	return t.Err()
}
