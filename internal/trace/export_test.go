package trace

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"mpisim/internal/mpi"
	"mpisim/internal/obs"
	"mpisim/internal/sim"
)

// handReport builds a minimal deterministic traced report by hand, so
// export goldens do not depend on machine-model constants.
func handReport() *mpi.Report {
	return &mpi.Report{
		Time: 2,
		Ranks: []mpi.RankStats{
			{ProcStats: sim.ProcStats{ComputeTime: 1.5, BlockedTime: 0.5, FinishTime: 2}},
			{ProcStats: sim.ProcStats{ComputeTime: 1, BlockedTime: 0.75, FinishTime: 1.75}},
		},
		Traces: [][]mpi.Segment{
			{
				{Start: 0, End: 1, Kind: mpi.SegCompute},
				{Start: 1, End: 1.5, Kind: mpi.SegDelay},
				{Start: 1.5, End: 2, Kind: mpi.SegBlocked},
			},
			{
				{Start: 0, End: 1, Kind: mpi.SegCompute},
				{Start: 1, End: 1.75, Kind: mpi.SegComm},
			},
		},
		CommEvents: [][]mpi.CommEvent{
			nil,
			{{From: 0, SendTime: 0.5, Arrival: 1, Complete: 1.25, Size: 4096, Tag: 7}},
		},
		CollPhases: [][]mpi.CollPhase{
			{{Name: "bcast", Start: 0.25, End: 0.5, Bytes: 1024}},
			{{Name: "bcast", Start: 0.25, End: 0.6, Bytes: 1024}},
		},
	}
}

const exportGolden = `{"type":"meta","pid":1,"tid":0,"name":"process_name","args":{"name":"target (virtual time)"}}
{"type":"meta","pid":1,"tid":0,"name":"thread_name","args":{"name":"rank 0"}}
{"type":"meta","pid":1,"tid":1,"name":"thread_name","args":{"name":"rank 1"}}
{"type":"span","pid":1,"tid":0,"name":"compute","cat":"activity","t":0,"dur":1}
{"type":"span","pid":1,"tid":0,"name":"delay","cat":"activity","t":1,"dur":0.5}
{"type":"span","pid":1,"tid":0,"name":"blocked","cat":"activity","t":1.5,"dur":0.5}
{"type":"span","pid":1,"tid":1,"name":"compute","cat":"activity","t":0,"dur":1}
{"type":"span","pid":1,"tid":1,"name":"comm","cat":"activity","t":1,"dur":0.75}
{"type":"flow_start","pid":1,"tid":0,"name":"p2p","cat":"msg","t":0.5,"id":1,"args":{"src":0,"dst":1,"tag":7,"bytes":4096,"mode":"eager"}}
{"type":"flow_end","pid":1,"tid":1,"name":"p2p","cat":"msg","t":1,"id":1,"args":{"src":0,"dst":1,"tag":7,"bytes":4096,"mode":"eager"}}
{"type":"phase_begin","pid":1,"tid":0,"name":"bcast","cat":"collective","t":0.25,"id":0,"args":{"bytes":1024}}
{"type":"phase_end","pid":1,"tid":0,"name":"bcast","cat":"collective","t":0.5,"id":0}
{"type":"phase_begin","pid":1,"tid":1,"name":"bcast","cat":"collective","t":0.25,"id":1048576,"args":{"bytes":1024}}
{"type":"phase_end","pid":1,"tid":1,"name":"bcast","cat":"collective","t":0.6,"id":1048576}
`

func TestExportJSONLGolden(t *testing.T) {
	var sb strings.Builder
	tr := obs.NewTracer(obs.NewJSONLSink(&sb))
	if err := Export(tr, handReport()); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for i, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d invalid JSON: %s", i+1, line)
		}
	}
	if got != exportGolden {
		t.Fatalf("export mismatch\n--- got ---\n%s--- want ---\n%s", got, exportGolden)
	}
}

func TestExportChromeValid(t *testing.T) {
	var sb strings.Builder
	tr := obs.NewTracer(obs.NewChromeSink(&sb))
	if err := Export(tr, handReport()); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("chrome export is not valid JSON:\n%s", sb.String())
	}
	for _, want := range []string{`"ph":"X"`, `"ph":"s"`, `"ph":"f"`, `"ph":"b"`, `"ph":"M"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("chrome export missing %s", want)
		}
	}
}

func TestExportRequiresTraces(t *testing.T) {
	tr := obs.NewTracer(obs.NewJSONLSink(&strings.Builder{}))
	if err := Export(tr, &mpi.Report{}); err == nil {
		t.Fatal("expected error for untraced report")
	}
}

// TestTimelineIncludesFinalEvent is the regression test for the column
// rounding bug: a segment at the very end of the run must land in the
// last column instead of being dropped when rounding pushes its start
// index to == width.
func TestTimelineIncludesFinalEvent(t *testing.T) {
	// With Time 0.9 and width 60, scale = 60/0.9 rounds so that the
	// float one ulp below 0.9 maps to column 60 == width: the final
	// event used to vanish entirely.
	end := 0.9
	start := math.Nextafter(end, 0)
	rep := &mpi.Report{
		Time: end,
		Traces: [][]mpi.Segment{{
			{Start: 0, End: 0.45, Kind: mpi.SegCompute},
			{Start: start, End: end, Kind: mpi.SegComm},
		}},
	}
	out, err := Timeline(rep, 60)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	row := lines[len(lines)-1]
	// The rank row is "   0|..........|": final glyph cell before the
	// closing bar must carry the comm glyph.
	bar := strings.LastIndexByte(row, '|')
	if bar <= 0 || row[bar-1] != '+' {
		t.Fatalf("final event missing from last column: %q", row)
	}
	if !strings.Contains(out, "' ' idle") {
		t.Errorf("legend missing idle glyph: %q", lines[0])
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	a := &Artifact{
		App: "tomcatv", Mode: "MPI-SIM-AM", Machine: "ibmsp",
		Inputs:    map[string]float64{"n": 64},
		TaskLines: map[string]int{"w_1": 12},
		TaskHeads: map[string]string{"w_1": "do i = 1, n"},
		Report:    handReport(),
	}
	if err := WriteArtifact(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "tomcatv" || got.Ranks != 2 || got.PredictedTime != 2 {
		t.Fatalf("round trip lost metadata: %+v", got)
	}
	if got.Report.Time != 2 || len(got.Report.Ranks) != 2 {
		t.Fatalf("round trip lost report: %+v", got.Report)
	}
	if got.TaskLines["w_1"] != 12 {
		t.Fatalf("round trip lost task lines: %+v", got.TaskLines)
	}
}

func TestReadArtifactErrors(t *testing.T) {
	if _, err := ReadArtifact(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
