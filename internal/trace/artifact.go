package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"mpisim/internal/mpi"
)

// Artifact is the on-disk record of one simulation run, written by the
// CLIs (-runjson) and consumed by cmd/mpireport to attribute
// scaling loss between configurations. It carries the full Report plus
// the identifying metadata the report alone lacks.
type Artifact struct {
	// App names the simulated program.
	App string `json:"app,omitempty"`
	// Mode is the evaluation mode ("measured", "MPI-SIM-AM", ...).
	Mode string `json:"mode,omitempty"`
	// Machine names the target machine model.
	Machine string `json:"machine,omitempty"`
	// Ranks is the target process count.
	Ranks int `json:"ranks"`
	// Inputs are the problem-size parameters of the run.
	Inputs map[string]float64 `json:"inputs,omitempty"`
	// PredictedTime duplicates Report.Time for cheap scanning.
	PredictedTime float64 `json:"predicted_time"`
	// Partial / AbortReason duplicate the report's graceful-degradation
	// status: a run stopped by a budget, watchdog, cancellation or crash
	// still writes its artifact, flagged so downstream tools can tell a
	// truncated prediction from a completed one.
	Partial     bool   `json:"partial,omitempty"`
	AbortReason string `json:"abort_reason,omitempty"`
	// Progress is the last-snapshot fraction of the run completed when
	// the artifact was written (obs.RunInfo percent, or a budget ratio),
	// in [0,1]; 0 when unknown. Meaningful mainly for partial runs,
	// where it quantifies how much execution the truncated prediction
	// covers.
	Progress float64 `json:"progress,omitempty"`
	// TaskLines / TaskHeads anchor condensed-task names (w_i) to the
	// original program's canonical listing, from compiler.TaskLines.
	TaskLines map[string]int    `json:"task_lines,omitempty"`
	TaskHeads map[string]string `json:"task_heads,omitempty"`
	// Report is the run's full simulation report.
	Report *mpi.Report `json:"report"`
}

// EncodeArtifact normalizes the report-derived fields and renders the
// artifact as indented JSON (with a trailing newline). The bytes are
// deterministic for a deterministic report, which is what lets the
// service daemon content-address artifacts and prove cached submissions
// byte-identical to fresh runs.
func EncodeArtifact(a *Artifact) ([]byte, error) {
	if a.Report == nil {
		return nil, fmt.Errorf("trace: artifact has no report")
	}
	a.PredictedTime = a.Report.Time
	a.Ranks = len(a.Report.Ranks)
	a.Partial = a.Report.Partial
	a.AbortReason = a.Report.AbortReason
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeArtifact parses artifact bytes produced by EncodeArtifact.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, err
	}
	if a.Report == nil {
		return nil, fmt.Errorf("trace: artifact has no report")
	}
	return &a, nil
}

// WriteArtifact writes a run artifact as indented JSON.
func WriteArtifact(path string, a *Artifact) error {
	data, err := EncodeArtifact(a)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// PartialWarning renders the one-line warning mpireport prints for a
// partial artifact: the (shortened) abort reason plus the last-snapshot
// progress percentage when the run recorded one. Returns "" for a
// complete artifact.
func PartialWarning(path string, a *Artifact) string {
	if !a.Partial {
		return ""
	}
	reason := a.AbortReason
	if i := strings.IndexByte(reason, ':'); i > 0 {
		reason = reason[:i]
	}
	if reason == "" {
		reason = "unknown"
	}
	s := fmt.Sprintf("%s is a partial run (aborted: %s", path, reason)
	if a.Progress > 0 {
		s += fmt.Sprintf("; ~%.0f%% complete at abort", 100*a.Progress)
	}
	return s + "); its attribution understates the full execution"
}

// ReadArtifact loads a run artifact written by WriteArtifact.
func ReadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := DecodeArtifact(data)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return a, nil
}
