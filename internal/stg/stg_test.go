package stg

import (
	"strings"
	"testing"

	"mpisim/internal/ir"
	"mpisim/internal/symexpr"
)

// figure1 builds the paper's Figure 1(a) example.
func figure1() *ir.Program {
	myid := ir.S(ir.BuiltinMyID)
	nVar := ir.S("N")
	b := ir.S("b")
	return &ir.Program{
		Name:   "figure1",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{
			{Name: "A", Dims: []ir.Expr{nVar, ir.Add(ir.N(1), ir.CeilDiv(nVar, ir.S(ir.BuiltinP)))}, Elem: 8},
			{Name: "D", Dims: []ir.Expr{nVar, ir.Add(ir.N(1), ir.CeilDiv(nVar, ir.S(ir.BuiltinP)))}, Elem: 8},
		},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			ir.SetS("b", ir.CeilDiv(nVar, ir.S(ir.BuiltinP))),
			&ir.If{Cond: ir.GT(myid, ir.N(0)), Then: ir.Block(
				&ir.Send{Dest: ir.Sub(myid, ir.N(1)), Tag: 1, Array: "D",
					Section: ir.Sec(ir.N(2), ir.Sub(nVar, ir.N(1)), ir.N(1), ir.N(1))})},
			&ir.If{Cond: ir.LT(myid, ir.Sub(ir.S(ir.BuiltinP), ir.N(1))), Then: ir.Block(
				&ir.Recv{Src: ir.Add(myid, ir.N(1)), Tag: 1, Array: "D",
					Section: ir.Sec(ir.N(2), ir.Sub(nVar, ir.N(1)), ir.Add(b, ir.N(1)), ir.Add(b, ir.N(1)))})},
			ir.Loop("compute", "j", ir.MaxE(ir.N(2), ir.Add(ir.Mul(myid, b), ir.N(1))),
				ir.MinE(nVar, ir.Add(ir.Mul(myid, b), b)),
				ir.Loop("", "i", ir.N(2), ir.Sub(nVar, ir.N(1)),
					ir.SetA("A", ir.IX(ir.S("i"), ir.S("j")),
						ir.Mul(ir.Add(ir.At("D", ir.S("i"), ir.S("j")),
							ir.At("D", ir.S("i"), ir.Sub(ir.S("j"), ir.N(1)))), ir.N(0.5))),
				),
			),
		),
	}
}

func TestBuildFigure1(t *testing.T) {
	g, err := Build(figure1())
	if err != nil {
		t.Fatal(err)
	}
	// Top level: compute(read+assign), branch(send), branch(recv), loop.
	if len(g.Roots) != 4 {
		t.Fatalf("got %d roots, want 4: %s", len(g.Roots), g)
	}
	if g.Roots[0].Kind != KindCompute {
		t.Fatalf("root 0 kind = %v", g.Roots[0].Kind)
	}
	if g.Roots[1].Kind != KindBranch || g.Roots[2].Kind != KindBranch {
		t.Fatalf("roots 1,2 should be branches")
	}
	if g.Roots[3].Kind != KindLoop {
		t.Fatalf("root 3 kind = %v", g.Roots[3].Kind)
	}
	// The send branch contains a comm node with a shift mapping.
	sendNode := g.Roots[1].Then[0]
	if sendNode.Kind != KindComm {
		t.Fatalf("expected comm node, got %v", sendNode.Kind)
	}
	if !strings.Contains(sendNode.Mapping, "(myid - 1)") {
		t.Fatalf("mapping = %q", sendNode.Mapping)
	}
	// Guard propagation.
	if len(sendNode.Guard) != 1 {
		t.Fatalf("send guard = %v", sendNode.Guard)
	}
}

func TestBuildRejectsCompilerConstructs(t *testing.T) {
	for _, s := range []ir.Stmt{
		&ir.Delay{Seconds: ir.N(1)},
		&ir.Timed{ID: "w_1", Units: ir.N(1)},
		&ir.ReadTaskTimes{Names: []string{"w_1"}},
	} {
		p := &ir.Program{Name: "bad", Body: ir.Block(s)}
		if _, err := Build(p); err == nil {
			t.Errorf("%T: expected error", s)
		}
	}
}

func TestCondenseFigure1(t *testing.T) {
	g, err := Build(figure1())
	if err != nil {
		t.Fatal(err)
	}
	cg := g.Condense()
	tasks := cg.CondensedTasks()
	// Two condensed tasks: the scalar prologue and the loop nest.
	if len(tasks) != 2 {
		t.Fatalf("got %d condensed tasks, want 2:\n%s", len(tasks), cg)
	}
	if tasks[0].TaskVar != "w_1" || tasks[1].TaskVar != "w_2" {
		t.Fatalf("task vars = %s, %s", tasks[0].TaskVar, tasks[1].TaskVar)
	}
	// The loop nest's scaling function must reference the retained
	// variables (N, myid, b) — the paper's Figure 1(c) delay argument.
	scalars := map[string]bool{}
	ir.ScalarsIn(tasks[1].Units, scalars, nil)
	for _, v := range []string{"N", "myid", "b"} {
		if !scalars[v] {
			t.Errorf("scaling function missing %q: %s", v, tasks[1].Units)
		}
	}
	// Comm nodes are retained.
	if len(cg.CommNodes()) != 2 {
		t.Fatalf("comm nodes = %d, want 2", len(cg.CommNodes()))
	}
	// The branches survive (they guard communication).
	if cg.Roots[1].Kind != KindBranch || cg.Roots[2].Kind != KindBranch {
		t.Fatalf("guarding branches not retained:\n%s", cg)
	}
}

func TestCondenseKeepsCommInLoop(t *testing.T) {
	// do it=1,T { SEND; compute; } : loop retained, body has comm + task.
	p := &ir.Program{
		Name:   "loopcomm",
		Arrays: []*ir.ArrayDecl{{Name: "D", Dims: []ir.Expr{ir.N(8)}, Elem: 8}},
		Body: ir.Block(
			ir.Loop("outer", "it", ir.N(1), ir.N(10),
				&ir.Send{Dest: ir.N(0), Tag: 1, Array: "D", Section: ir.Pt(ir.N(1))},
				ir.SetA("D", ir.IX(ir.N(2)), ir.S("it")),
			),
		),
	}
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cg := g.Condense()
	if len(cg.Roots) != 1 || cg.Roots[0].Kind != KindLoop {
		t.Fatalf("outer loop not retained:\n%s", cg)
	}
	kids := cg.Roots[0].Children
	if len(kids) != 2 || kids[0].Kind != KindComm || kids[1].Kind != KindCondensed {
		t.Fatalf("loop body condensation wrong:\n%s", cg)
	}
}

func TestCondenseWholeProgramWithoutComm(t *testing.T) {
	p := &ir.Program{
		Name: "pure",
		Body: ir.Block(
			ir.SetS("a", ir.N(1)),
			ir.Loop("", "i", ir.N(1), ir.N(10), ir.SetS("b", ir.S("i"))),
			ir.SetS("c", ir.N(2)),
		),
	}
	g, _ := Build(p)
	cg := g.Condense()
	if len(cg.Roots) != 1 || cg.Roots[0].Kind != KindCondensed {
		t.Fatalf("pure program should collapse to one task:\n%s", cg)
	}
	if len(cg.TaskVars) != 1 {
		t.Fatalf("TaskVars = %v", cg.TaskVars)
	}
}

func TestUnitsOfMatchesInterpreterAccounting(t *testing.T) {
	// Rectangular nest: do i=1,N { do j=1,M { A(i? no arrays: x = i+j } }
	// interp charges: head(1) + N*(1 + head(1) + M*(1 + (1 store + 1 op)))
	stmts := ir.Block(
		ir.Loop("", "i", ir.N(1), ir.S("N"),
			ir.Loop("", "j", ir.N(1), ir.S("M"),
				ir.SetS("x", ir.Add(ir.S("i"), ir.S("j"))))))
	units := ir.Simplify(UnitsOf(stmts))
	// Evaluate symbolically via ToSym at N=4, M=5:
	se, err := ir.ToSym(units)
	if err != nil {
		t.Fatalf("units not symbolic: %v (%s)", err, units)
	}
	env := symexpr.Env{"N": 4, "M": 5}
	got := mustEval(t, se, env)
	want := 1.0 + 4*(1+1+5*(1+2))
	if got != want {
		t.Fatalf("units = %v, want %v (%s)", got, want, units)
	}
	// After Simplify, a rectangular nest's units must be in closed form
	// (no SumE nodes), so Delay evaluation is O(1).
	if containsSum(units) {
		t.Fatalf("rectangular nest not collapsed: %s", units)
	}
}

func containsSum(e ir.Expr) bool {
	switch x := e.(type) {
	case ir.SumE:
		return true
	case ir.Bin:
		return containsSum(x.L) || containsSum(x.R)
	case ir.Call:
		return containsSum(x.Arg)
	}
	return false
}

func mustEval(t *testing.T, se symexpr.Expr, env symexpr.Env) float64 {
	t.Helper()
	v, err := se.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestUnitsOfBranchAveraging(t *testing.T) {
	// if (c) { 3 assigns } else { 1 assign } -> head 1 + (3+1)/2 = 3 units
	stmts := ir.Block(&ir.If{
		Cond: ir.S("c"),
		Then: ir.Block(ir.SetS("x", ir.N(1)), ir.SetS("y", ir.N(2)), ir.SetS("z", ir.N(3))),
		Else: ir.Block(ir.SetS("x", ir.N(4))),
	})
	units := ir.Simplify(UnitsOf(stmts))
	se, err := ir.ToSym(units)
	if err != nil {
		t.Fatal(err)
	}
	got := mustEval(t, se, nil)
	if got != 3 {
		t.Fatalf("branch units = %v, want 3 (%s)", got, units)
	}
}

func TestTriangularUnitsKeepSum(t *testing.T) {
	// do i=1,N { do j=1,i { x=1 } } : inner trip depends on i.
	stmts := ir.Block(
		ir.Loop("", "i", ir.N(1), ir.S("N"),
			ir.Loop("", "j", ir.N(1), ir.S("i"), ir.SetS("x", ir.N(1)))))
	units := ir.Simplify(UnitsOf(stmts))
	if !containsSum(units) {
		t.Fatalf("triangular nest should keep a Sum: %s", units)
	}
	se, err := ir.ToSym(units)
	if err != nil {
		t.Fatal(err)
	}
	got := mustEval(t, se, symexpr.Env{"N": 3})
	// head 1 + sum_i (1 + head 1 + i*(1+1)) = 1 + 3*(2) + 2*(1+2+3) = 19
	if got != 19 {
		t.Fatalf("triangular units = %v, want 19 (%s)", got, units)
	}
}

func TestGraphCountsAndString(t *testing.T) {
	g, _ := Build(figure1())
	if g.NodeCount() < 7 {
		t.Fatalf("NodeCount = %d", g.NodeCount())
	}
	s := g.String()
	for _, want := range []string{"static task graph", "comm", "loop", "procs="} {
		if !strings.Contains(s, want) {
			t.Errorf("graph dump missing %q", want)
		}
	}
	cg := g.Condense()
	cs := cg.String()
	if !strings.Contains(cs, "units=") || !strings.Contains(cs, "task w_") {
		t.Errorf("condensed dump missing annotations:\n%s", cs)
	}
}

func TestCollectiveNodes(t *testing.T) {
	p := &ir.Program{
		Name: "colls",
		Body: ir.Block(
			ir.SetS("r", ir.N(1)),
			&ir.Allreduce{Op: "sum", Vars: []string{"r"}},
			&ir.Bcast{Root: ir.N(0), Vars: []string{"r"}},
			&ir.Barrier{},
		),
	}
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	comms := g.CommNodes()
	if len(comms) != 3 {
		t.Fatalf("comm nodes = %d, want 3", len(comms))
	}
	if !strings.Contains(comms[0].Label, "allreduce") ||
		!strings.Contains(comms[1].Label, "bcast") ||
		!strings.Contains(comms[2].Label, "barrier") {
		t.Fatalf("labels: %q %q %q", comms[0].Label, comms[1].Label, comms[2].Label)
	}
}

func TestDOTExport(t *testing.T) {
	g, err := Build(figure1())
	if err != nil {
		t.Fatal(err)
	}
	dot := g.Condense().DOT()
	for _, want := range []string{"digraph", "box3d", "ellipse", "->", "units="} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestUnitsOfProfiledWeights(t *testing.T) {
	branch := &ir.If{
		Cond: ir.S("c"),
		Then: ir.Block(ir.SetS("x", ir.N(1)), ir.SetS("y", ir.N(2))), // 2 units
		Else: ir.Block(ir.SetS("x", ir.N(3))),                        // 1 unit
	}
	stmts := []ir.Stmt{branch}
	eval := func(probs map[*ir.If]float64) float64 {
		u := ir.Simplify(UnitsOfProfiled(stmts, probs))
		se, err := ir.ToSym(u)
		if err != nil {
			t.Fatal(err)
		}
		v, err := se.Eval(nil)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// Default 0.5 folding: 1 + (2+1)/2 = 2.5
	if got := eval(nil); got != 2.5 {
		t.Fatalf("default units = %v", got)
	}
	// Measured 90% taken: 1 + 0.9*2 + 0.1*1 = 2.9
	if got := eval(map[*ir.If]float64{branch: 0.9}); got != 2.9 {
		t.Fatalf("profiled units = %v", got)
	}
	// Never taken: 1 + 0*2 + 1*1 = 2
	if got := eval(map[*ir.If]float64{branch: 0}); got != 2 {
		t.Fatalf("never-taken units = %v", got)
	}
}
