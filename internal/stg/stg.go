// Package stg implements the static task graph (STG) of the paper: an
// abstract, symbolic representation of a message-passing program that
// identifies the sequential computations (tasks), the parallel structure
// (communication and synchronization), and the control flow that
// determines the parallel structure (paper §2.2).
//
// The graph is synthesized from the program IR (the role dhpf plays in
// the paper), and a condensation transform collapses maximal
// communication-free regions into single condensed tasks annotated with
// symbolic scaling functions — the number of abstract operations the
// region executes as a function of program variables (paper §3.1).
package stg

import (
	"fmt"
	"strings"

	"mpisim/internal/ir"
)

// Kind classifies STG nodes: the paper's control-flow, computation and
// communication categories, plus the condensed tasks introduced by the
// condensation transform.
type Kind int

// Node kinds.
const (
	KindCompute Kind = iota
	KindLoop
	KindBranch
	KindComm
	KindCondensed
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindLoop:
		return "loop"
	case KindBranch:
		return "branch"
	case KindComm:
		return "comm"
	case KindCondensed:
		return "condensed"
	}
	return "unknown"
}

// Node is an STG node. Each node remembers the region of source (IR)
// statements it represents, as the paper's nodes carry source markers.
type Node struct {
	ID    int
	Kind  Kind
	Label string
	// Stmts is the represented source region: the run of simple
	// statements for compute nodes, the single statement for comm nodes,
	// the whole collapsed region for condensed nodes, and the For/If
	// statement itself for loop/branch nodes.
	Stmts []ir.Stmt
	// Children is the loop body for KindLoop.
	Children []*Node
	// Then/Else are the arms for KindBranch.
	Then, Else []*Node
	// Guard is the stack of enclosing branch conditions: together with
	// the implicit {[p] : 0 <= p < P} it denotes the symbolic set of
	// processes that execute the node.
	Guard []ir.Expr
	// Units is the symbolic scaling function of a condensed node: the
	// abstract-operation count as an expression over program variables.
	Units ir.Expr
	// TaskVar is the w_i time parameter name of a condensed node.
	TaskVar string
	// Mapping annotates comm nodes with the symbolic task mapping, e.g.
	// "[p] -> [q = (myid - 1)]".
	Mapping string
}

// Graph is a static task graph (hierarchical form: sequence + nesting;
// control-flow edges are the sequence order, communication edges are
// derivable from the comm nodes' mappings).
type Graph struct {
	Program *ir.Program
	Roots   []*Node
	// TaskVars lists the condensed tasks' time parameters in emission
	// order (empty before condensation).
	TaskVars    []string
	nextID      int
	branchProbs map[*ir.If]float64
}

// Build synthesizes the STG of a program. Programs containing
// compiler-emitted constructs (Delay, Timed, ReadTaskTimes) are rejected:
// the STG is built from source programs only.
func Build(p *ir.Program) (*Graph, error) {
	g := &Graph{Program: p}
	roots, err := g.buildSeq(p.Body, nil)
	if err != nil {
		return nil, err
	}
	g.Roots = roots
	return g, nil
}

func (g *Graph) newNode(k Kind, label string, guard []ir.Expr) *Node {
	g.nextID++
	return &Node{ID: g.nextID, Kind: k, Label: label, Guard: guard}
}

func (g *Graph) buildSeq(body []ir.Stmt, guard []ir.Expr) ([]*Node, error) {
	var out []*Node
	var run []ir.Stmt // pending simple statements
	flush := func() {
		if len(run) == 0 {
			return
		}
		n := g.newNode(KindCompute, fmt.Sprintf("compute#%d", g.nextID+1), guard)
		n.Stmts = run
		run = nil
		out = append(out, n)
	}
	for _, s := range body {
		switch x := s.(type) {
		case *ir.Assign, *ir.ReadInput:
			run = append(run, s)
		case *ir.For:
			flush()
			n := g.newNode(KindLoop, loopLabel(x), guard)
			n.Stmts = []ir.Stmt{x}
			children, err := g.buildSeq(x.Body, guard)
			if err != nil {
				return nil, err
			}
			n.Children = children
			out = append(out, n)
		case *ir.If:
			flush()
			n := g.newNode(KindBranch, fmt.Sprintf("if(%s)", x.Cond), guard)
			n.Stmts = []ir.Stmt{x}
			thenG := append(append([]ir.Expr{}, guard...), x.Cond)
			var err error
			n.Then, err = g.buildSeq(x.Then, thenG)
			if err != nil {
				return nil, err
			}
			elseG := append(append([]ir.Expr{}, guard...), ir.EQ(x.Cond, ir.N(0)))
			n.Else, err = g.buildSeq(x.Else, elseG)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		case *ir.Send:
			flush()
			n := g.newNode(KindComm, "send "+x.Array, guard)
			n.Stmts = []ir.Stmt{x}
			n.Mapping = fmt.Sprintf("[p] -> [q = %s]", x.Dest)
			out = append(out, n)
		case *ir.Recv:
			flush()
			n := g.newNode(KindComm, "recv "+x.Array, guard)
			n.Stmts = []ir.Stmt{x}
			n.Mapping = fmt.Sprintf("[p] <- [q = %s]", x.Src)
			out = append(out, n)
		case *ir.Allreduce:
			flush()
			n := g.newNode(KindComm, "allreduce "+strings.Join(x.Vars, ","), guard)
			n.Stmts = []ir.Stmt{x}
			n.Mapping = "[p] <-> [all]"
			out = append(out, n)
		case *ir.Bcast:
			flush()
			n := g.newNode(KindComm, "bcast "+strings.Join(x.Vars, ","), guard)
			n.Stmts = []ir.Stmt{x}
			n.Mapping = fmt.Sprintf("[%s] -> [all]", x.Root)
			out = append(out, n)
		case *ir.Barrier:
			flush()
			n := g.newNode(KindComm, "barrier", guard)
			n.Stmts = []ir.Stmt{x}
			n.Mapping = "[all] <-> [all]"
			out = append(out, n)
		case *ir.Delay, *ir.Timed, *ir.ReadTaskTimes:
			return nil, fmt.Errorf("stg: %T is a compiler-emitted construct; build the STG from the source program", s)
		default:
			return nil, fmt.Errorf("stg: unsupported statement %T", s)
		}
	}
	flush()
	return out, nil
}

func loopLabel(f *ir.For) string {
	if f.Label != "" {
		return "do " + f.Label
	}
	return fmt.Sprintf("do %s=%s,%s", f.Var, f.Lo, f.Hi)
}

// hasComm reports whether the node or any descendant is a communication
// node.
func hasComm(n *Node) bool {
	if n.Kind == KindComm {
		return true
	}
	for _, c := range n.Children {
		if hasComm(c) {
			return true
		}
	}
	for _, c := range n.Then {
		if hasComm(c) {
			return true
		}
	}
	for _, c := range n.Else {
		if hasComm(c) {
			return true
		}
	}
	return false
}

// Condense returns a new graph in which every maximal run of
// communication-free sibling nodes is collapsed into a single condensed
// task with a symbolic scaling function (paper §3.1). Loops and branches
// that contain communication are retained, and their bodies condensed
// recursively. The criteria follow the paper: single-exit regions (the
// IR has no early exits), no communication inside a collapsed region,
// and conditionals inside collapsed regions folded statistically
// (uniform 0.5 arm weights; see CondenseProfiled).
func (g *Graph) Condense() *Graph { return g.CondenseProfiled(nil) }

// CondenseProfiled is Condense with measured branch probabilities for
// the statistical folding of conditionals inside collapsed regions
// ("we can use profiling to estimate the branching probabilities of
// eliminated branches", paper §3.1). Branches absent from the map fold
// with the default 0.5 weight.
func (g *Graph) CondenseProfiled(branchProbs map[*ir.If]float64) *Graph {
	ng := &Graph{Program: g.Program, branchProbs: branchProbs}
	ng.Roots = ng.condenseSeq(g.Roots)
	return ng
}

func (ng *Graph) condenseSeq(nodes []*Node) []*Node {
	var out []*Node
	var region []*Node
	flush := func() {
		if len(region) == 0 {
			return
		}
		var stmts []ir.Stmt
		for _, n := range region {
			stmts = append(stmts, n.Stmts...)
		}
		c := ng.newNode(KindCondensed, "", region[0].Guard)
		c.Stmts = stmts
		c.TaskVar = fmt.Sprintf("w_%d", len(ng.TaskVars)+1)
		c.Units = ir.Simplify(UnitsOfProfiled(stmts, ng.branchProbs))
		c.Label = fmt.Sprintf("task %s", c.TaskVar)
		ng.TaskVars = append(ng.TaskVars, c.TaskVar)
		region = nil
		out = append(out, c)
	}
	for _, n := range nodes {
		if !hasComm(n) {
			region = append(region, n)
			continue
		}
		flush()
		switch n.Kind {
		case KindLoop:
			nn := ng.newNode(KindLoop, n.Label, n.Guard)
			nn.Stmts = n.Stmts
			nn.Children = ng.condenseSeq(n.Children)
			out = append(out, nn)
		case KindBranch:
			nn := ng.newNode(KindBranch, n.Label, n.Guard)
			nn.Stmts = n.Stmts
			nn.Then = ng.condenseSeq(n.Then)
			nn.Else = ng.condenseSeq(n.Else)
			out = append(out, nn)
		default: // comm
			nn := ng.newNode(n.Kind, n.Label, n.Guard)
			nn.Stmts = n.Stmts
			nn.Mapping = n.Mapping
			out = append(out, nn)
		}
	}
	flush()
	return out
}

// UnitsOf computes the symbolic scaling function of a statement region:
// the abstract-operation count the interpreter would charge, as an
// expression over program variables. Conditionals contribute the average
// of their arms (the paper's statistical folding of branches inside
// collapsible regions); loops contribute bounded summations that
// Simplify collapses to closed form when rectangular.
func UnitsOf(stmts []ir.Stmt) ir.Expr { return UnitsOfProfiled(stmts, nil) }

// UnitsOfProfiled is UnitsOf with measured branch-taken probabilities;
// conditionals listed in probs weight their arms by p and 1-p instead of
// the uniform 0.5.
func UnitsOfProfiled(stmts []ir.Stmt, probs map[*ir.If]float64) ir.Expr {
	var total ir.Expr = ir.N(0)
	for _, s := range stmts {
		total = ir.Add(total, unitsOfStmt(s, probs))
	}
	return total
}

func unitsOfStmt(s ir.Stmt, probs map[*ir.If]float64) ir.Expr {
	switch x := s.(type) {
	case *ir.Assign:
		cost := 1 + ir.OpCount(x.RHS)
		if x.LHS.IsArray() {
			for _, e := range x.LHS.Index {
				cost += ir.OpCount(e)
			}
		}
		return ir.N(cost)
	case *ir.ReadInput:
		return ir.N(0)
	case *ir.For:
		head := ir.N(1 + ir.OpCount(x.Lo) + ir.OpCount(x.Hi))
		body := ir.Add(ir.N(1), UnitsOfProfiled(x.Body, probs))
		return ir.Add(head, ir.SumE{Index: x.Var, Lo: x.Lo, Hi: x.Hi, Body: body})
	case *ir.If:
		head := ir.N(1 + ir.OpCount(x.Cond))
		p := 0.5
		if probs != nil {
			if measured, ok := probs[x]; ok {
				p = measured
			}
		}
		arms := ir.Add(
			ir.Mul(UnitsOfProfiled(x.Then, probs), ir.N(p)),
			ir.Mul(UnitsOfProfiled(x.Else, probs), ir.N(1-p)))
		return ir.Add(head, arms)
	}
	// Communication and compiler constructs carry no computational units.
	return ir.N(0)
}

// CondensedTasks returns the condensed nodes in emission order.
func (g *Graph) CondensedTasks() []*Node {
	var out []*Node
	g.walk(func(n *Node) {
		if n.Kind == KindCondensed {
			out = append(out, n)
		}
	})
	return out
}

// CommNodes returns the communication nodes in order.
func (g *Graph) CommNodes() []*Node {
	var out []*Node
	g.walk(func(n *Node) {
		if n.Kind == KindComm {
			out = append(out, n)
		}
	})
	return out
}

// NodeCount returns the total number of nodes.
func (g *Graph) NodeCount() int {
	c := 0
	g.walk(func(*Node) { c++ })
	return c
}

func (g *Graph) walk(fn func(*Node)) {
	var rec func(ns []*Node)
	rec = func(ns []*Node) {
		for _, n := range ns {
			fn(n)
			rec(n.Children)
			rec(n.Then)
			rec(n.Else)
		}
	}
	rec(g.Roots)
}

// String renders the graph as an indented tree with symbolic annotations.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "static task graph: %s\n", g.Program.Name)
	var rec func(ns []*Node, depth int)
	rec = func(ns []*Node, depth int) {
		for _, n := range ns {
			for i := 0; i < depth; i++ {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "[%d] %s", n.ID, n.Kind)
			if n.Label != "" {
				fmt.Fprintf(&sb, " %s", n.Label)
			}
			if n.Mapping != "" {
				fmt.Fprintf(&sb, "  %s", n.Mapping)
			}
			if n.Units != nil {
				fmt.Fprintf(&sb, "  units=%s", n.Units)
			}
			if len(n.Guard) > 0 {
				guards := make([]string, len(n.Guard))
				for i, ge := range n.Guard {
					guards[i] = ge.String()
				}
				fmt.Fprintf(&sb, "  procs={[p] : %s}", strings.Join(guards, " && "))
			} else {
				sb.WriteString("  procs={[p] : 0 <= p < P}")
			}
			sb.WriteString("\n")
			if len(n.Then) > 0 || len(n.Else) > 0 {
				rec(n.Then, depth+1)
				if len(n.Else) > 0 {
					for i := 0; i < depth; i++ {
						sb.WriteString("  ")
					}
					sb.WriteString("else:\n")
					rec(n.Else, depth+1)
				}
			}
			rec(n.Children, depth+1)
		}
	}
	rec(g.Roots, 1)
	return sb.String()
}

// DOT renders the graph in Graphviz dot format for visualization.
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [fontsize=10];\n", g.Program.Name)
	var emit func(ns []*Node, parent string)
	emit = func(ns []*Node, parent string) {
		prev := parent
		for _, n := range ns {
			id := fmt.Sprintf("n%d", n.ID)
			label := n.Kind.String()
			if n.Label != "" {
				label = n.Label
			}
			shape := "box"
			switch n.Kind {
			case KindComm:
				shape = "ellipse"
				if n.Mapping != "" {
					label += "\n" + n.Mapping
				}
			case KindCondensed:
				shape = "box3d"
				if n.Units != nil {
					label += "\nunits=" + n.Units.String()
				}
			case KindLoop:
				shape = "hexagon"
			case KindBranch:
				shape = "diamond"
			}
			fmt.Fprintf(&sb, "  %s [label=%q, shape=%s];\n", id, label, shape)
			if prev != "" {
				fmt.Fprintf(&sb, "  %s -> %s;\n", prev, id)
			}
			emit(n.Children, id)
			emit(n.Then, id)
			emit(n.Else, id)
			prev = id
		}
	}
	emit(g.Roots, "")
	sb.WriteString("}\n")
	return sb.String()
}
