// Package slicer implements the program slicing of paper §3.2: given the
// condensed static task graph, it isolates the subset of the computation
// and data that can affect the program's parallel behaviour — retained
// control flow, communication arguments, and the scaling functions of
// condensed tasks — so that everything else can be abstracted away.
//
// The slice is conservative and operates at variable-name granularity
// (arrays as wholes), matching the paper's setting of limited
// interprocedural precision: "the subset has to be conservative, limited
// by the precision of static program analysis, and therefore may not be
// minimal".
package slicer

import (
	"sort"

	"mpisim/internal/ir"
	"mpisim/internal/stg"
)

// Slice is the result of slicing a program against its condensed graph.
type Slice struct {
	// Relevant is the set of variable names (scalars and arrays) whose
	// values can affect parallel behaviour.
	Relevant map[string]bool
	// Retained marks original statements that must be executed by the
	// simplified program because they (transitively) define relevant
	// variables. Control statements are marked when any descendant is.
	Retained map[ir.Stmt]bool
	// DummyArrays are arrays that appear only as communication payloads
	// and may be replaced by the shared dummy buffer.
	DummyArrays map[string]bool
	// KeptArrays are declared arrays the simplified program must keep
	// (they are relevant, e.g. the NAS SP grid-size arrays used in loop
	// bounds).
	KeptArrays map[string]bool
	// MsgElems maps each communication statement whose array is replaced
	// by the dummy buffer to the element-count expression of its section.
	MsgElems map[ir.Stmt]ir.Expr
}

// Run computes the slice of p with respect to its condensed graph cg.
func Run(p *ir.Program, cg *stg.Graph) (*Slice, error) {
	s := &Slice{
		Relevant:    map[string]bool{},
		Retained:    map[ir.Stmt]bool{},
		DummyArrays: map[string]bool{},
		KeptArrays:  map[string]bool{},
		MsgElems:    map[ir.Stmt]ir.Expr{},
	}
	s.seed(cg)
	s.fixpoint(p)
	s.classifyArrays(p, cg)
	return s, nil
}

// addExpr adds every scalar and array referenced by e to the relevant
// set.
func (s *Slice) addExpr(e ir.Expr) {
	if e == nil {
		return
	}
	ir.ScalarsIn(e, s.Relevant, s.Relevant)
}

// seed initializes the relevant set from the condensed graph: retained
// control flow, communication arguments, and scaling functions.
func (s *Slice) seed(cg *stg.Graph) {
	var rec func(ns []*stg.Node)
	rec = func(ns []*stg.Node) {
		for _, n := range ns {
			switch n.Kind {
			case stg.KindLoop:
				f := n.Stmts[0].(*ir.For)
				s.addExpr(f.Lo)
				s.addExpr(f.Hi)
				rec(n.Children)
			case stg.KindBranch:
				br := n.Stmts[0].(*ir.If)
				s.addExpr(br.Cond)
				rec(n.Then)
				rec(n.Else)
			case stg.KindComm:
				switch c := n.Stmts[0].(type) {
				case *ir.Send:
					s.addExpr(c.Dest)
					for _, rg := range c.Section {
						s.addExpr(rg.Lo)
						s.addExpr(rg.Hi)
					}
				case *ir.Recv:
					s.addExpr(c.Src)
					for _, rg := range c.Section {
						s.addExpr(rg.Lo)
						s.addExpr(rg.Hi)
					}
				case *ir.Bcast:
					s.addExpr(c.Root)
				}
			case stg.KindCondensed:
				// Scaling-function variables must be computable at
				// simulation time (w_i parameters are bound separately).
				s.addExpr(n.Units)
			}
		}
	}
	rec(cg.Roots)
}

// fixpoint performs the backward closure: statements defining relevant
// variables are retained and their uses become relevant; control
// statements enclosing retained statements contribute their header uses.
// Iterates to a fixed point to handle loop-carried chains.
func (s *Slice) fixpoint(p *ir.Program) {
	for {
		changed := false
		var visit func(body []ir.Stmt) bool // returns "contains retained"
		visit = func(body []ir.Stmt) bool {
			any := false
			for _, st := range body {
				inner := false
				switch x := st.(type) {
				case *ir.For:
					inner = visit(x.Body)
				case *ir.If:
					inner = visit(x.Then) || visit(x.Else)
				case *ir.Timed:
					inner = visit(x.Body)
				}
				du := ir.StmtDefUse(st)
				retain := inner
				for d := range du.Defs {
					if s.Relevant[d] {
						retain = true
						break
					}
				}
				if retain {
					if !s.Retained[st] {
						s.Retained[st] = true
						changed = true
					}
					// Header/statement uses become relevant. For control
					// statements, du covers only the headers; bodies were
					// handled recursively.
					for u := range du.Uses {
						if !s.Relevant[u] {
							s.Relevant[u] = true
							changed = true
						}
					}
					// Loops executing retained statements also make the
					// induction variable relevant (already in Defs) and
					// their trip counts part of the slice.
					any = true
				}
			}
			return any
		}
		visit(p.Body)
		if !changed {
			return
		}
	}
}

// sectionElemsExpr builds the element-count expression of a section:
// prod_d max(0, hi_d - lo_d + 1).
func sectionElemsExpr(sec []ir.Range) ir.Expr {
	var total ir.Expr = ir.N(1)
	for _, rg := range sec {
		n := ir.MaxE(ir.N(0), ir.Add(ir.Sub(rg.Hi, rg.Lo), ir.N(1)))
		total = ir.Mul(total, n)
	}
	return ir.Simplify(total)
}

// classifyArrays decides, for every declared array, whether the
// simplified program keeps it (relevant) or routes its communication
// through the dummy buffer (paper §3.1: "If a program array that is
// otherwise unused is referenced in any communication call, we replace
// that array reference with a reference to a single dummy buffer").
func (s *Slice) classifyArrays(p *ir.Program, cg *stg.Graph) {
	commArrays := map[string]bool{}
	var rec func(ns []*stg.Node)
	rec = func(ns []*stg.Node) {
		for _, n := range ns {
			if n.Kind == stg.KindComm {
				switch c := n.Stmts[0].(type) {
				case *ir.Send:
					commArrays[c.Array] = true
					if !s.Relevant[c.Array] {
						s.MsgElems[n.Stmts[0]] = sectionElemsExpr(c.Section)
					}
				case *ir.Recv:
					commArrays[c.Array] = true
					if !s.Relevant[c.Array] {
						s.MsgElems[n.Stmts[0]] = sectionElemsExpr(c.Section)
					}
				}
			}
			rec(n.Children)
			rec(n.Then)
			rec(n.Else)
		}
	}
	rec(cg.Roots)
	for _, d := range p.Arrays {
		if s.Relevant[d.Name] {
			s.KeptArrays[d.Name] = true
		} else if commArrays[d.Name] {
			s.DummyArrays[d.Name] = true
		}
		// Arrays that are neither relevant nor communicated are simply
		// eliminated.
	}
}

// RelevantSorted returns the relevant variable names in sorted order.
func (s *Slice) RelevantSorted() []string {
	out := make([]string, 0, len(s.Relevant))
	for v := range s.Relevant {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// EliminatedArrays returns declared arrays dropped entirely (neither kept
// nor dummied), sorted.
func (s *Slice) EliminatedArrays(p *ir.Program) []string {
	var out []string
	for _, d := range p.Arrays {
		if !s.KeptArrays[d.Name] && !s.DummyArrays[d.Name] {
			out = append(out, d.Name)
		}
	}
	sort.Strings(out)
	return out
}
