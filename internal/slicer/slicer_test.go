package slicer

import (
	"testing"

	"mpisim/internal/ir"
	"mpisim/internal/stg"
)

func slice(t *testing.T, p *ir.Program) *Slice {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g, err := stg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Run(p, g.Condense())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSeedsFromCommArguments(t *testing.T) {
	// dest = myid-1 and section bounds use N: myid, N relevant.
	p := &ir.Program{
		Name:   "comm-seeds",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{{Name: "D", Dims: []ir.Expr{ir.N(100)}, Elem: 8}},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			&ir.If{Cond: ir.GT(ir.S(ir.BuiltinMyID), ir.N(0)), Then: ir.Block(
				&ir.Send{Dest: ir.Sub(ir.S(ir.BuiltinMyID), ir.N(1)), Tag: 1, Array: "D",
					Section: ir.Sec(ir.N(1), ir.S("N"))})},
		),
	}
	s := slice(t, p)
	for _, v := range []string{"N", ir.BuiltinMyID} {
		if !s.Relevant[v] {
			t.Errorf("%s not relevant: %v", v, s.RelevantSorted())
		}
	}
	if !s.Retained[p.Body[0]] {
		t.Error("ReadInput N not retained")
	}
}

func TestTransitiveChainRetained(t *testing.T) {
	// c <- b <- a: a send count uses c, so all three defs are retained.
	p := &ir.Program{
		Name:   "chain",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{{Name: "D", Dims: []ir.Expr{ir.N(100)}, Elem: 8}},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			ir.SetS("a", ir.Add(ir.S("N"), ir.N(1))),
			ir.SetS("b", ir.Mul(ir.S("a"), ir.N(2))),
			ir.SetS("c", ir.Sub(ir.S("b"), ir.N(3))),
			ir.SetS("unrelated", ir.N(7)),
			&ir.Send{Dest: ir.N(0), Tag: 1, Array: "D", Section: ir.Sec(ir.N(1), ir.S("c"))},
		),
	}
	s := slice(t, p)
	for _, v := range []string{"a", "b", "c", "N"} {
		if !s.Relevant[v] {
			t.Errorf("%s not relevant", v)
		}
	}
	if s.Relevant["unrelated"] {
		t.Error("unrelated var wrongly relevant")
	}
	retainedAssigns := 0
	for st := range s.Retained {
		if _, ok := st.(*ir.Assign); ok {
			retainedAssigns++
		}
	}
	if retainedAssigns != 3 {
		t.Errorf("retained %d assigns, want 3 (a,b,c)", retainedAssigns)
	}
}

func TestLoopCarriedChain(t *testing.T) {
	// n is updated inside a loop and used as a later loop bound whose
	// body is collapsed: the updating loop must be retained (fixpoint
	// over loop-carried definitions).
	p := &ir.Program{
		Name: "loop-carried",
		Body: ir.Block(
			ir.SetS("n", ir.N(1)),
			ir.Loop("grow", "i", ir.N(1), ir.N(5),
				ir.SetS("n", ir.Mul(ir.S("n"), ir.N(2)))),
			ir.Loop("work", "j", ir.N(1), ir.S("n"),
				ir.SetS("x", ir.S("j"))),
			&ir.Barrier{},
		),
	}
	s := slice(t, p)
	if !s.Relevant["n"] {
		t.Fatal("n not relevant")
	}
	// The grow loop defines n (via its body) and must be retained.
	grow := p.Body[1].(*ir.For)
	if !s.Retained[grow] {
		t.Error("grow loop not retained")
	}
	if !s.Retained[grow.Body[0]] {
		t.Error("n update not retained")
	}
	// The work loop is inside a condensed region; x is irrelevant.
	if s.Relevant["x"] {
		t.Error("x wrongly relevant")
	}
}

func TestArrayClassification(t *testing.T) {
	// BOUNDS feeds loop bounds (kept); DATA is comm payload only
	// (dummy); SCRATCH is pure computation (eliminated).
	p := &ir.Program{
		Name: "classify",
		Arrays: []*ir.ArrayDecl{
			{Name: "BOUNDS", Dims: []ir.Expr{ir.N(4)}, Elem: 8},
			{Name: "DATA", Dims: []ir.Expr{ir.N(64)}, Elem: 8},
			{Name: "SCRATCH", Dims: []ir.Expr{ir.N(64)}, Elem: 8},
		},
		Body: ir.Block(
			ir.SetA("BOUNDS", ir.IX(ir.N(1)), ir.N(10)),
			&ir.Send{Dest: ir.N(0), Tag: 1, Array: "DATA",
				Section: ir.Sec(ir.N(1), ir.At("BOUNDS", ir.N(1)))},
			ir.Loop("", "i", ir.N(1), ir.N(64),
				ir.SetA("SCRATCH", ir.IX(ir.S("i")), ir.S("i"))),
		),
	}
	s := slice(t, p)
	if !s.KeptArrays["BOUNDS"] {
		t.Errorf("BOUNDS not kept: %v", s.RelevantSorted())
	}
	if !s.DummyArrays["DATA"] {
		t.Error("DATA not dummied")
	}
	if s.KeptArrays["SCRATCH"] || s.DummyArrays["SCRATCH"] {
		t.Error("SCRATCH not eliminated")
	}
	elim := s.EliminatedArrays(p)
	if len(elim) != 1 || elim[0] != "SCRATCH" {
		t.Errorf("eliminated = %v", elim)
	}
}

func TestMsgElemsOnlyForDummiedComm(t *testing.T) {
	// A comm statement on a kept array must not get a dummy size.
	p := &ir.Program{
		Name: "keptcomm",
		Arrays: []*ir.ArrayDecl{
			{Name: "B", Dims: []ir.Expr{ir.N(4)}, Elem: 8},
		},
		Body: ir.Block(
			ir.SetA("B", ir.IX(ir.N(1)), ir.N(3)),
			// B is relevant because the section bound below reads it.
			&ir.Send{Dest: ir.N(0), Tag: 1, Array: "B",
				Section: ir.Sec(ir.N(1), ir.At("B", ir.N(1)))},
		),
	}
	s := slice(t, p)
	if !s.KeptArrays["B"] {
		t.Fatalf("B should be kept: %v", s.RelevantSorted())
	}
	if len(s.MsgElems) != 0 {
		t.Fatalf("MsgElems for kept-array comm: %v", s.MsgElems)
	}
}

func TestScalingFunctionVariablesAreSeeds(t *testing.T) {
	// The loop bound scalar "m" only matters through the condensed
	// region's scaling function; it must still be relevant and its
	// definition retained.
	p := &ir.Program{
		Name: "scaling-seed",
		Body: ir.Block(
			ir.SetS("m", ir.N(42)),
			ir.Loop("work", "i", ir.N(1), ir.S("m"),
				ir.SetS("x", ir.S("i"))),
			&ir.Barrier{},
		),
	}
	s := slice(t, p)
	if !s.Relevant["m"] {
		t.Fatalf("m not relevant: %v", s.RelevantSorted())
	}
	if !s.Retained[p.Body[0]] {
		t.Error("definition of m not retained")
	}
}

func TestBranchConditionControlDependence(t *testing.T) {
	// A retained statement inside an If makes the condition's variables
	// relevant, even if the If guards no communication.
	p := &ir.Program{
		Name:   "ctrl-dep",
		Arrays: []*ir.ArrayDecl{{Name: "D", Dims: []ir.Expr{ir.N(8)}, Elem: 8}},
		Body: ir.Block(
			ir.SetS("flag", ir.N(1)),
			&ir.If{Cond: ir.GT(ir.S("flag"), ir.N(0)), Then: ir.Block(
				ir.SetS("count", ir.N(5)))},
			&ir.Send{Dest: ir.N(0), Tag: 1, Array: "D",
				Section: ir.Sec(ir.N(1), ir.S("count"))},
		),
	}
	s := slice(t, p)
	if !s.Relevant["count"] || !s.Relevant["flag"] {
		t.Fatalf("control dependence missed: %v", s.RelevantSorted())
	}
	if !s.Retained[p.Body[0]] {
		t.Error("flag definition not retained")
	}
}

func TestEmptyProgram(t *testing.T) {
	s := slice(t, &ir.Program{Name: "empty"})
	if len(s.Relevant) != 0 || len(s.Retained) != 0 {
		t.Fatalf("empty program produced a non-empty slice: %+v", s)
	}
}
