package fault

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestRNGDeterminismAndSplit(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}
	// Splitting does not consume parent output.
	p1, p2 := NewRNG(7), NewRNG(7)
	_ = p1.Split(3)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split consumed parent output")
	}
	// Distinct labels give distinct streams; equal labels give equal ones.
	c1, c2, c3 := p2.Split(0), p2.Split(1), p2.Split(0)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling streams with distinct labels coincide")
	}
	c1b := c1.Uint64()
	_ = c3.Uint64() // advance c3 past the first draw
	if c3.Uint64() != c1b {
		t.Fatal("equal labels produced different streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
		ok   bool
	}{
		{"empty", Scenario{}, true},
		{"loss ok", Scenario{Loss: []LossSpec{{Prob: 0.5, From: AnyRank, To: AnyRank}}}, true},
		{"loss bad prob", Scenario{Loss: []LossSpec{{Prob: 1.5, From: AnyRank, To: AnyRank}}}, false},
		{"loss bad rank", Scenario{Loss: []LossSpec{{Prob: 0.5, From: 9, To: AnyRank}}}, false},
		{"crash any", Scenario{Crashes: []CrashSpec{{Rank: AnyRank, Time: 1}}}, false},
		{"crash neg time", Scenario{Crashes: []CrashSpec{{Rank: 0, Time: -1}}}, false},
		{"link weak", Scenario{Links: []LinkSpec{{From: AnyRank, To: AnyRank, Factor: 0.5}}}, false},
		{"compute ok", Scenario{Compute: []ComputeSpec{{Rank: AnyRank, Factor: 2, Window: Window{Start: 1, End: 2}}}}, true},
		{"window empty", Scenario{Compute: []ComputeSpec{{Rank: AnyRank, Factor: 2, Window: Window{Start: 2, End: 1}}}}, false},
		{"retry bad", Scenario{Retry: &RetryConfig{Timeout: 0}}, false},
		{"retry ok", Scenario{Retry: &RetryConfig{Timeout: 1e-4}}, true},
	}
	for _, c := range cases {
		err := c.s.Validate(4)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestScenarioJSONRoundTripAndDefaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	s := &Scenario{
		Seed:  7,
		Retry: &RetryConfig{Timeout: 2e-4, Backoff: 2, MaxRetries: 8},
		Loss:  []LossSpec{{Prob: 0.01, From: AnyRank, To: AnyRank}},
		Links: []LinkSpec{{From: 0, To: 1, Factor: 4, Window: Window{Start: 1, End: 2}}},
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 7 || got.Loss[0].Prob != 0.01 || got.Loss[0].From != AnyRank {
		t.Fatalf("round trip mangled scenario: %+v", got)
	}
	if got.Links[0].Factor != 4 || got.Links[0].Start != 1 {
		t.Fatalf("round trip mangled link spec: %+v", got.Links[0])
	}
}

func TestJSONDefaultsAnyRank(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	// from/to omitted: must mean AnyRank, not rank 0.
	if err := os.WriteFile(path, []byte(`{"seed": 1, "loss": [{"prob": 0.5}], "delay": [{"prob": 1, "extra": 0.1}], "compute": [{"factor": 2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Loss[0].From != AnyRank || s.Loss[0].To != AnyRank {
		t.Fatalf("omitted loss from/to = (%d, %d), want AnyRank", s.Loss[0].From, s.Loss[0].To)
	}
	if s.Delay[0].From != AnyRank || s.Delay[0].To != AnyRank {
		t.Fatalf("omitted delay from/to = (%d, %d), want AnyRank", s.Delay[0].From, s.Delay[0].To)
	}
	if s.Compute[0].Rank != AnyRank {
		t.Fatalf("omitted compute rank = %d, want AnyRank", s.Compute[0].Rank)
	}
}

func TestInjectorLossRate(t *testing.T) {
	s := &Scenario{Seed: 123, Loss: []LossSpec{{Prob: 0.1, From: AnyRank, To: AnyRank}}}
	in, err := s.Injector(2)
	if err != nil {
		t.Fatal(err)
	}
	rf := in.Rank(0)
	const n = 20000
	lost := 0
	for i := 0; i < n; i++ {
		if rf.SendFate(1, 0).Lost {
			lost++
		}
	}
	rate := float64(lost) / n
	if math.Abs(rate-0.1) > 0.01 {
		t.Fatalf("loss rate %g, want ~0.1", rate)
	}
	if got := in.Stats().Lost; got != int64(lost) {
		t.Fatalf("stats lost %d != %d", got, lost)
	}
}

func TestInjectorRetryModel(t *testing.T) {
	s := &Scenario{
		Seed:  5,
		Retry: &RetryConfig{Timeout: 1e-3, Backoff: 2, MaxRetries: 30},
		Loss:  []LossSpec{{Prob: 0.5, From: AnyRank, To: AnyRank}},
	}
	in, err := s.Injector(2)
	if err != nil {
		t.Fatal(err)
	}
	rf := in.Rank(0)
	sawRetry := false
	for i := 0; i < 1000; i++ {
		f := rf.SendFate(1, 0)
		if f.Lost {
			t.Fatalf("message lost despite 30 retries at p=0.5 (draw %d)", i)
		}
		if f.Retries > 0 {
			sawRetry = true
			// RetryWait must be the geometric sum of the first f.Retries waits.
			want := 0.0
			w := 1e-3
			for k := 0; k < f.Retries; k++ {
				want += w
				w *= 2
			}
			if math.Abs(f.RetryWait-want) > 1e-12 {
				t.Fatalf("RetryWait %g, want %g for %d retries", f.RetryWait, want, f.Retries)
			}
		}
	}
	if !sawRetry {
		t.Fatal("no retransmission in 1000 draws at p=0.5")
	}
	st := in.Stats()
	if st.Retransmissions == 0 || st.RetryWaitSeconds <= 0 {
		t.Fatalf("retransmission stats empty: %+v", st)
	}
}

func TestInjectorWindowsAndSelectors(t *testing.T) {
	s := &Scenario{
		Seed: 9,
		Loss: []LossSpec{{Prob: 1, From: 0, To: 1, Window: Window{Start: 1, End: 2}}},
		Links: []LinkSpec{
			{From: 0, To: 2, Factor: 3},
			{From: AnyRank, To: AnyRank, Factor: 2, Window: Window{Start: 5, End: 6}},
		},
		Compute: []ComputeSpec{{Rank: 1, Factor: 4, Window: Window{Start: 0, End: 10}}},
	}
	in, err := s.Injector(3)
	if err != nil {
		t.Fatal(err)
	}
	r0 := in.Rank(0)
	if f := r0.SendFate(1, 0.5); f.Lost {
		t.Fatal("loss fired outside its window")
	}
	if f := r0.SendFate(1, 1.5); !f.Lost {
		t.Fatal("certain loss did not fire inside its window")
	}
	if f := r0.SendFate(2, 1.5); f.Lost {
		t.Fatal("loss fired for a non-matching destination")
	}
	if f := r0.SendFate(2, 0); f.LinkFactor != 3 {
		t.Fatalf("link factor %g, want 3", f.LinkFactor)
	}
	if f := r0.SendFate(2, 5.5); f.LinkFactor != 3 {
		t.Fatalf("overlapping links: factor %g, want the strongest (3)", f.LinkFactor)
	}
	if f := r0.SendFate(1, 5.5); f.LinkFactor != 2 {
		t.Fatalf("windowed any-any link: factor %g, want 2", f.LinkFactor)
	}
	if got := in.Rank(1).ComputeFactor(3); got != 4 {
		t.Fatalf("compute factor %g, want 4", got)
	}
	if got := in.Rank(0).ComputeFactor(3); got != 1 {
		t.Fatalf("compute factor leaked to wrong rank: %g", got)
	}
	if got := in.Rank(1).ComputeFactor(11); got != 1 {
		t.Fatalf("compute factor outside window: %g", got)
	}
}

func TestInjectorCrash(t *testing.T) {
	s := &Scenario{Crashes: []CrashSpec{{Rank: 1, Time: 3}, {Rank: 1, Time: 2}}}
	in, err := s.Injector(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := in.Rank(0).CrashTime(); ok {
		t.Fatal("rank 0 has a crash scheduled")
	}
	ct, ok := in.Rank(1).CrashTime()
	if !ok || ct != 2 {
		t.Fatalf("rank 1 crash = (%g, %v), want earliest (2, true)", ct, ok)
	}
}

func TestInjectorStreamsIndependent(t *testing.T) {
	// Rank 1's decisions must not depend on how many draws rank 0 made.
	mk := func() *Injector {
		in, err := (&Scenario{Seed: 77, Loss: []LossSpec{{Prob: 0.5, From: AnyRank, To: AnyRank}}}).Injector(2)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		a.Rank(0).SendFate(1, 0) // extra draws on rank 0 of a only
	}
	for i := 0; i < 100; i++ {
		if a.Rank(1).SendFate(0, 0).Lost != b.Rank(1).SendFate(0, 0).Lost {
			t.Fatalf("rank 1 stream diverged at draw %d after rank 0 activity", i)
		}
	}
}
