package fault

// Splittable deterministic randomness for fault injection.
//
// Every fault decision is drawn from a stream derived from the scenario
// seed, and streams are split per rank (and per purpose) so that the
// decision sequence seen by one rank depends only on that rank's own
// call order — never on host worker count, engine choice, or goroutine
// interleaving. Identical seeds therefore give byte-identical runs; the
// determinism regression test in determinism_test.go guards this.
//
// The generator is SplitMix64 (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014): a 64-bit counter
// advanced by the golden-ratio increment with an avalanching finalizer.
// It is not cryptographic; it is small, allocation-free, and splits
// cheaply, which is what a simulator needs.

// rngGamma is the golden-ratio increment of SplitMix64.
const rngGamma = 0x9e3779b97f4a7c15

// RNG is a splittable deterministic generator. The zero value is a
// valid stream seeded with 0; prefer NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a stream seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: mix64(seed)}
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche of its input.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += rngGamma
	return mix64(r.state)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent child stream labeled by label without
// consuming any output of the parent: children with distinct labels from
// the same parent, and equal labels from distinct parents, never share a
// sequence (up to the mixing quality of SplitMix64). Splitting is how
// per-rank fault streams stay independent of each other's draw counts.
func (r *RNG) Split(label uint64) *RNG {
	return &RNG{state: mix64(r.state ^ mix64(label+rngGamma))}
}
