package fault

import "fmt"

// Injector is a Scenario compiled for a concrete world size: one
// independent decision stream per rank plus precomputed per-rank crash
// times. It is consulted by the MPI layer on the simulated ranks'
// goroutines; each RankFaults must only be used from its own rank's
// body, which keeps every decision deterministic in the rank's program
// order with no locking.
type Injector struct {
	scenario *Scenario
	ranks    []*RankFaults
}

// Injector compiles the scenario for a world of the given size.
func (s *Scenario) Injector(ranks int) (*Injector, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("fault: world size must be positive, got %d", ranks)
	}
	if err := s.Validate(ranks); err != nil {
		return nil, err
	}
	master := NewRNG(s.Seed)
	in := &Injector{scenario: s, ranks: make([]*RankFaults, ranks)}
	for i := range in.ranks {
		rf := &RankFaults{
			inj:  in,
			rank: i,
			rng:  master.Split(uint64(i)),
		}
		for _, c := range s.Crashes {
			if c.Rank == i && (!rf.crashes || c.Time < rf.crashTime) {
				rf.crashes, rf.crashTime = true, c.Time
			}
		}
		in.ranks[i] = rf
	}
	return in, nil
}

// Scenario returns the compiled scenario.
func (in *Injector) Scenario() *Scenario { return in.scenario }

// Retry returns the scenario's retransmission model (nil = no recovery).
func (in *Injector) Retry() *RetryConfig { return in.scenario.Retry }

// Rank returns rank i's decision stream and accounting.
func (in *Injector) Rank(i int) *RankFaults { return in.ranks[i] }

// Stats aggregates the per-rank fault accounting. Only call after the
// run completed (the per-rank counters are owned by the rank bodies).
func (in *Injector) Stats() Stats {
	var t Stats
	for _, rf := range in.ranks {
		t.Drops += rf.stats.Drops
		t.Lost += rf.stats.Lost
		t.Retransmissions += rf.stats.Retransmissions
		t.BackoffWaits += rf.stats.BackoffWaits
		t.Duplicates += rf.stats.Duplicates
		t.Delays += rf.stats.Delays
		t.Crashes += rf.stats.Crashes
		t.RetryWaitSeconds += rf.stats.RetryWaitSeconds
		t.ExtraDelaySeconds += rf.stats.ExtraDelaySeconds
	}
	return t
}

// Stats is the aggregate fault accounting of a run.
type Stats struct {
	// Drops counts dropped transmissions, including dropped
	// retransmissions; Lost counts messages dropped permanently (retries
	// disabled or exhausted).
	Drops int64 `json:"drops"`
	Lost  int64 `json:"lost,omitempty"`
	// Retransmissions counts retransmitted copies; BackoffWaits counts
	// the waits that were exponentially backed off beyond the base
	// timeout (i.e. second and later retransmissions of one message).
	Retransmissions int64 `json:"retransmissions"`
	BackoffWaits    int64 `json:"backoff_waits"`
	// Duplicates and Delays count messages duplicated / given extra
	// transit delay.
	Duplicates int64 `json:"duplicates,omitempty"`
	Delays     int64 `json:"delays,omitempty"`
	// Crashes counts ranks that hit their stop-failure.
	Crashes int64 `json:"crashes,omitempty"`
	// RetryWaitSeconds / ExtraDelaySeconds are the virtual seconds of
	// added transit delay from retransmission waits / delay injection.
	RetryWaitSeconds  float64 `json:"retry_wait_seconds,omitempty"`
	ExtraDelaySeconds float64 `json:"extra_delay_seconds,omitempty"`
}

// RankFaults is one rank's view of the injector: a private decision
// stream plus local accounting. Methods must only be called from the
// rank's own body goroutine.
type RankFaults struct {
	inj  *Injector
	rank int
	rng  *RNG

	crashes   bool
	crashTime float64

	stats Stats
}

// MsgFate is the injector's verdict on one message transmission.
type MsgFate struct {
	// Lost: the message is never delivered (dropped with retries
	// disabled or exhausted).
	Lost bool
	// Retries is the number of retransmitted copies before success; the
	// receiver sees the arrival delayed by RetryWait seconds of
	// timeout/backoff waits.
	Retries   int
	RetryWait float64
	// Duplicated: the transport delivered a suppressed duplicate copy,
	// costing extra sender NIC/CPU occupancy.
	Duplicated bool
	// ExtraDelay is injected transit delay in seconds (delay specs).
	ExtraDelay float64
	// LinkFactor >= 1 scales transit latency and serialization.
	LinkFactor float64
}

// CrashTime returns the rank's stop-failure time, if one is scheduled.
func (rf *RankFaults) CrashTime() (float64, bool) { return rf.crashTime, rf.crashes }

// RecordCrash accounts the rank's stop-failure (called once by the MPI
// layer when the crash fires).
func (rf *RankFaults) RecordCrash() { rf.stats.Crashes++ }

// Stats returns the rank's local accounting.
func (rf *RankFaults) Stats() Stats { return rf.stats }

// matchMsg reports whether a from/to selector matches this sender and
// the destination.
func matchMsg(specFrom, specTo, from, to int) bool {
	return (specFrom == AnyRank || specFrom == from) &&
		(specTo == AnyRank || specTo == to)
}

// SendFate draws the fate of a message this rank sends to dst at
// virtual time now. Draw order is fixed (loss, retransmissions, dup,
// per-spec delay), so the rank's decision sequence depends only on its
// own call order: the fate is deterministic across engines and host
// worker counts. The loss probability observed at send time is used for
// every retransmission of the same message.
func (rf *RankFaults) SendFate(dst int, now float64) MsgFate {
	f := MsgFate{LinkFactor: 1}
	s := rf.inj.scenario

	// Combined drop probability of all matching loss specs.
	keep := 1.0
	for _, l := range s.Loss {
		if l.Prob > 0 && matchMsg(l.From, l.To, rf.rank, dst) && l.contains(now) {
			keep *= 1 - l.Prob
		}
	}
	if p := 1 - keep; p > 0 && rf.rng.Float64() < p {
		rf.stats.Drops++
		if rc := s.Retry; rc == nil {
			f.Lost = true
			rf.stats.Lost++
		} else {
			wait := rc.Timeout
			bo := rc.backoff()
			f.Lost = true
			for i := 1; i <= rc.maxRetries(); i++ {
				f.RetryWait += wait
				f.Retries++
				rf.stats.Retransmissions++
				if i > 1 {
					rf.stats.BackoffWaits++
				}
				if rf.rng.Float64() >= p {
					f.Lost = false
					break
				}
				rf.stats.Drops++
				wait *= bo
			}
			if f.Lost {
				rf.stats.Lost++
			} else {
				rf.stats.RetryWaitSeconds += f.RetryWait
			}
		}
	}

	// Duplication (suppressed at the receiver, costs occupancy only).
	keep = 1.0
	for _, d := range s.Duplicate {
		if d.Prob > 0 && matchMsg(d.From, d.To, rf.rank, dst) && d.contains(now) {
			keep *= 1 - d.Prob
		}
	}
	if p := 1 - keep; p > 0 && rf.rng.Float64() < p {
		f.Duplicated = true
		rf.stats.Duplicates++
	}

	// Extra transit delay, one draw per matching spec.
	for _, d := range s.Delay {
		if d.Prob > 0 && matchMsg(d.From, d.To, rf.rank, dst) && d.contains(now) {
			if rf.rng.Float64() < d.Prob {
				extra := d.Extra
				if d.Jitter > 0 {
					extra += d.Jitter * rf.rng.Float64()
				}
				f.ExtraDelay += extra
				rf.stats.Delays++
			}
		}
	}
	if !f.Lost {
		rf.stats.ExtraDelaySeconds += f.ExtraDelay
	}

	// Link slowdown: deterministic windows, strongest matching factor.
	for _, l := range s.Links {
		if matchMsg(l.From, l.To, rf.rank, dst) && l.contains(now) && l.Factor > f.LinkFactor {
			f.LinkFactor = l.Factor
		}
	}
	return f
}

// ComputeFactor returns the compute slowdown factor (>= 1) for this
// rank at virtual time now: the strongest matching transient slowdown.
// Purely window-driven, no randomness.
func (rf *RankFaults) ComputeFactor(now float64) float64 {
	factor := 1.0
	for _, c := range rf.inj.scenario.Compute {
		if (c.Rank == AnyRank || c.Rank == rf.rank) && c.contains(now) && c.Factor > factor {
			factor = c.Factor
		}
	}
	return factor
}
