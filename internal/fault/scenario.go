// Package fault is the deterministic fault-injection subsystem of the
// simulator. A Scenario — built in Go or loaded from JSON (the CLI's
// `-faults scenario.json`) — schedules stop-failures of ranks, message
// drop/duplication/delay, link slowdown windows, and transient per-node
// compute slowdown, all on the *virtual*-time axis. Every stochastic
// decision is drawn from a splittable seeded RNG (rng.go) with one
// stream per rank, so identical seeds give byte-identical simulations
// regardless of host worker count or engine, and different seeds give
// independent perturbations.
//
// The scenario also configures the MPI layer's reliability model: a
// timeout/exponential-backoff retransmission policy under which dropped
// messages are eventually delivered (their added latency is attributed
// to a dedicated fault/retransmission component in reports), or — with
// retries disabled — lost forever, which the kernel watchdog then
// reports as a per-rank wait-state dump instead of a hang.
//
// This makes the simulator a resilience-prediction tool in the spirit of
// Cornebize & Legrand ("Variability Matters", 2021): platform
// perturbation is a first-class modelled input, not noise.
package fault

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// AnyRank selects every rank in a spec's From/To/Rank field.
const AnyRank = -1

// Window bounds a fault effect on the virtual-time axis, in seconds.
// The zero value (Start == End == 0) means "the whole run"; otherwise
// the effect applies to times t with Start <= t < End, where End == 0
// again means "until the end of the run".
type Window struct {
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
}

// contains reports whether t falls inside the window.
func (w Window) contains(t float64) bool {
	if t < w.Start {
		return false
	}
	return w.End == 0 || t < w.End
}

// validate reports an impossible window.
func (w Window) validate() error {
	if w.Start < 0 || w.End < 0 {
		return fmt.Errorf("fault: negative window bound [%g, %g)", w.Start, w.End)
	}
	if w.End != 0 && w.End <= w.Start {
		return fmt.Errorf("fault: empty window [%g, %g)", w.Start, w.End)
	}
	return nil
}

// RetryConfig is the MPI layer's reliability model over a lossy
// transport: a dropped message is retransmitted after Timeout seconds,
// then Timeout*Backoff, Timeout*Backoff^2, ... up to MaxRetries
// retransmissions. A nil RetryConfig on the scenario disables recovery:
// dropped messages are lost forever and the receiver (provably) hangs,
// which the kernel watchdog turns into a wait-state dump.
type RetryConfig struct {
	// Timeout is the wait in virtual seconds before the first
	// retransmission.
	Timeout float64 `json:"timeout"`
	// Backoff multiplies the wait after every failed attempt (>= 1;
	// 0 defaults to 2, plain exponential backoff).
	Backoff float64 `json:"backoff,omitempty"`
	// MaxRetries bounds the number of retransmissions per message
	// (0 defaults to 16). A message still lost after the final
	// retransmission is dropped permanently.
	MaxRetries int `json:"max_retries,omitempty"`
}

// validate reports configuration errors.
func (rc *RetryConfig) validate() error {
	if rc.Timeout <= 0 {
		return fmt.Errorf("fault: retry timeout must be positive, got %g", rc.Timeout)
	}
	if rc.Backoff != 0 && rc.Backoff < 1 {
		return fmt.Errorf("fault: retry backoff must be >= 1, got %g", rc.Backoff)
	}
	if rc.MaxRetries < 0 {
		return fmt.Errorf("fault: negative max_retries %d", rc.MaxRetries)
	}
	return nil
}

// backoff returns the effective backoff multiplier.
func (rc *RetryConfig) backoff() float64 {
	if rc.Backoff == 0 {
		return 2
	}
	return rc.Backoff
}

// maxRetries returns the effective retransmission bound.
func (rc *RetryConfig) maxRetries() int {
	if rc.MaxRetries == 0 {
		return 16
	}
	return rc.MaxRetries
}

// CrashSpec stops a rank at a virtual time: a fail-stop failure. The
// rank executes normally until its local clock reaches Time, then ceases
// all computation and communication (it neither sends nor receives
// again). Ranks depending on it block; with no application-level
// recovery the run is caught by the watchdog/deadlock detector, whose
// dump names the crashed rank.
type CrashSpec struct {
	// Rank is the victim (AnyRank is not allowed here: crashes are
	// targeted).
	Rank int `json:"rank"`
	// Time is the virtual time of the stop-failure in seconds.
	Time float64 `json:"time"`
}

// LossSpec drops each matching message with probability Prob. From/To
// restrict the affected sender/receiver (AnyRank = all), Window the
// affected send times. In JSON, omitted from/to default to AnyRank; Go
// literals must write AnyRank explicitly.
type LossSpec struct {
	Prob float64 `json:"prob"`
	From int     `json:"from"`
	To   int     `json:"to"`
	Window
}

// UnmarshalJSON defaults omitted from/to to AnyRank.
func (l *LossSpec) UnmarshalJSON(b []byte) error {
	type alias LossSpec
	a := alias{From: AnyRank, To: AnyRank}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*l = LossSpec(a)
	return nil
}

// DupSpec duplicates each matching message with probability Prob. Under
// a reliable MPI transport the duplicate is suppressed at the receiver,
// so it costs link/NIC occupancy and sender CPU but is delivered once.
type DupSpec struct {
	Prob float64 `json:"prob"`
	From int     `json:"from"`
	To   int     `json:"to"`
	Window
}

// UnmarshalJSON defaults omitted from/to to AnyRank.
func (d *DupSpec) UnmarshalJSON(b []byte) error {
	type alias DupSpec
	a := alias{From: AnyRank, To: AnyRank}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*d = DupSpec(a)
	return nil
}

// DelaySpec adds Extra (+ uniform jitter in [0, Jitter)) seconds of
// transit delay to each matching message with probability Prob.
type DelaySpec struct {
	Prob   float64 `json:"prob"`
	Extra  float64 `json:"extra"`
	Jitter float64 `json:"jitter,omitempty"`
	From   int     `json:"from"`
	To     int     `json:"to"`
	Window
}

// UnmarshalJSON defaults omitted from/to to AnyRank.
func (d *DelaySpec) UnmarshalJSON(b []byte) error {
	type alias DelaySpec
	a := alias{From: AnyRank, To: AnyRank}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*d = DelaySpec(a)
	return nil
}

// LinkSpec slows the link From->To during Window: transit latency and
// serialization time are multiplied by Factor (> 1). Slowdowns only ever
// increase delays, so the kernel's conservative lookahead (the minimum
// network latency) remains a valid lower bound.
type LinkSpec struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	Factor float64 `json:"factor"`
	Window
}

// UnmarshalJSON defaults omitted from/to to AnyRank.
func (l *LinkSpec) UnmarshalJSON(b []byte) error {
	type alias LinkSpec
	a := alias{From: AnyRank, To: AnyRank}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*l = LinkSpec(a)
	return nil
}

// ComputeSpec slows computation (directly executed compute and delay
// calls) on Rank (AnyRank = all ranks) by Factor during Window: a
// transient per-node slowdown, modelling OS noise, thermal throttling or
// a degraded node.
type ComputeSpec struct {
	Rank   int     `json:"rank"`
	Factor float64 `json:"factor"`
	Window
}

// UnmarshalJSON defaults an omitted rank to AnyRank.
func (c *ComputeSpec) UnmarshalJSON(b []byte) error {
	type alias ComputeSpec
	a := alias{Rank: AnyRank}
	if err := json.Unmarshal(b, &a); err != nil {
		return err
	}
	*c = ComputeSpec(a)
	return nil
}

// Scenario is a complete fault-injection plan plus the transport
// reliability model. The zero value injects nothing.
type Scenario struct {
	// Seed drives every stochastic decision; identical seeds give
	// byte-identical runs.
	Seed uint64 `json:"seed"`
	// Retry configures the retransmission model; nil disables recovery
	// from message loss.
	Retry *RetryConfig `json:"retry,omitempty"`

	Crashes   []CrashSpec   `json:"crashes,omitempty"`
	Loss      []LossSpec    `json:"loss,omitempty"`
	Duplicate []DupSpec     `json:"duplicate,omitempty"`
	Delay     []DelaySpec   `json:"delay,omitempty"`
	Links     []LinkSpec    `json:"links,omitempty"`
	Compute   []ComputeSpec `json:"compute,omitempty"`
}

// Active reports whether the scenario injects any fault at all.
func (s *Scenario) Active() bool {
	if s == nil {
		return false
	}
	return len(s.Crashes) > 0 || len(s.Loss) > 0 || len(s.Duplicate) > 0 ||
		len(s.Delay) > 0 || len(s.Links) > 0 || len(s.Compute) > 0
}

// Validate reports configuration errors; ranks is the world size the
// scenario will be applied to (0 skips rank-bound checks, for validating
// a file before the configuration is known).
func (s *Scenario) Validate(ranks int) error {
	checkRank := func(what string, r int) error {
		if r == AnyRank {
			return nil
		}
		if r < 0 || (ranks > 0 && r >= ranks) {
			return fmt.Errorf("fault: %s rank %d out of range (world size %d)", what, r, ranks)
		}
		return nil
	}
	checkProb := func(what string, p float64) error {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("fault: %s probability %g outside [0, 1]", what, p)
		}
		return nil
	}
	if s.Retry != nil {
		if err := s.Retry.validate(); err != nil {
			return err
		}
	}
	for _, c := range s.Crashes {
		if c.Rank == AnyRank {
			return fmt.Errorf("fault: crash rank must be a concrete rank")
		}
		if err := checkRank("crash", c.Rank); err != nil {
			return err
		}
		if c.Time < 0 {
			return fmt.Errorf("fault: crash time %g negative", c.Time)
		}
	}
	for _, l := range s.Loss {
		if err := checkProb("loss", l.Prob); err != nil {
			return err
		}
		if err := checkRank("loss from", l.From); err != nil {
			return err
		}
		if err := checkRank("loss to", l.To); err != nil {
			return err
		}
		if err := l.Window.validate(); err != nil {
			return err
		}
	}
	for _, d := range s.Duplicate {
		if err := checkProb("duplicate", d.Prob); err != nil {
			return err
		}
		if err := checkRank("duplicate from", d.From); err != nil {
			return err
		}
		if err := checkRank("duplicate to", d.To); err != nil {
			return err
		}
		if err := d.Window.validate(); err != nil {
			return err
		}
	}
	for _, d := range s.Delay {
		if err := checkProb("delay", d.Prob); err != nil {
			return err
		}
		if d.Extra < 0 || d.Jitter < 0 {
			return fmt.Errorf("fault: negative delay extra/jitter (%g, %g)", d.Extra, d.Jitter)
		}
		if err := checkRank("delay from", d.From); err != nil {
			return err
		}
		if err := checkRank("delay to", d.To); err != nil {
			return err
		}
		if err := d.Window.validate(); err != nil {
			return err
		}
	}
	for _, l := range s.Links {
		if l.Factor < 1 {
			return fmt.Errorf("fault: link slowdown factor %g < 1", l.Factor)
		}
		if err := checkRank("link from", l.From); err != nil {
			return err
		}
		if err := checkRank("link to", l.To); err != nil {
			return err
		}
		if err := l.Window.validate(); err != nil {
			return err
		}
	}
	for _, c := range s.Compute {
		if c.Factor < 1 {
			return fmt.Errorf("fault: compute slowdown factor %g < 1", c.Factor)
		}
		if err := checkRank("compute", c.Rank); err != nil {
			return err
		}
		if err := c.Window.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Load reads and validates a scenario file written as JSON.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	if err := s.Validate(0); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return &s, nil
}

// Save writes the scenario as indented JSON.
func (s *Scenario) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
