// Package tables regenerates every table and figure of the paper's
// evaluation (§4): validation curves (Figures 3-9), the memory-usage
// table (Table 1), scalability of the optimized simulator (Figures
// 10-11) and simulator performance (Figures 12-16).
//
// Each experiment returns a structured result that renders as the same
// rows/series the paper reports. Absolute seconds come from this
// repository's machine models, so the claims to check are shapes: who
// wins, by roughly what factor, and where the crossovers fall.
// EXPERIMENTS.md records paper-versus-measured for every experiment.
package tables

import (
	"fmt"
	"sort"
	"strings"

	"mpisim/internal/obs"
)

// Config controls experiment scale.
type Config struct {
	// Full selects paper-scale configurations (hours of CPU). The
	// default is a scaled-down set preserving every shape; EXPERIMENTS.md
	// documents the scaling.
	Full bool
	// HostWorkers sets the simulation engine's host processes for the
	// heavy runs (0 = sequential engine).
	HostWorkers int
	// RankCap, when positive, drops configurations above this many
	// target ranks; used by the test suite to bound experiment runtime.
	RankCap int
	// Metrics / Tracer attach the observability plane (internal/obs) to
	// every runner the experiments create, so a long sweep's simulator
	// behaviour can be watched live (cmd/experiments -metrics/-obshttp).
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// Timeline / RunInfo attach the live-telemetry plane to every runner
	// (time-series snapshots, progress heartbeats; see internal/obs), so
	// cmd/experiments -obshttp can serve /series, /run and /events.
	Timeline *obs.Timeline
	RunInfo  *obs.RunInfo
	// Topology / Placement override the interconnect model of every
	// machine the experiments construct (cmd/experiments
	// -topology/-placement); empty keeps each preset's flat default.
	Topology  string
	Placement string
}

// Point is one (x, y) sample of a series.
type Point struct{ X, Y float64 }

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Table is a regenerated paper table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Result is any renderable experiment outcome.
type Result interface {
	Render() string
	Name() string
}

// Name implements Result.
func (f *Figure) Name() string { return f.ID }

// Name implements Result.
func (t *Table) Name() string { return t.ID }

// Render formats the figure as an aligned text table: one row per x
// value, one column per series.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", f.ID, f.Title)
	// Collect the union of x values in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = fmtG(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	writeAligned(&sb, header, rows)
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

// Render formats the table.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", t.ID, t.Title)
	writeAligned(&sb, t.Header, t.Rows)
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "  note: %s\n", n)
	}
	return sb.String()
}

func writeAligned(sb *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(header)
	rows2 := append([][]string{}, rows...)
	for _, r := range rows2 {
		line(r)
	}
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.4g", x)
}

func fmtG(y float64) string { return fmt.Sprintf("%.4g", y) }

// Experiments returns the registry of all experiment generators in paper
// order.
func Experiments() []struct {
	ID  string
	Run func(Config) (Result, error)
} {
	return []struct {
		ID  string
		Run func(Config) (Result, error)
	}{
		{"fig3", func(c Config) (Result, error) { return Figure3(c) }},
		{"fig4", func(c Config) (Result, error) { return Figure4(c) }},
		{"fig5", func(c Config) (Result, error) { return Figure5(c) }},
		{"fig6", func(c Config) (Result, error) { return Figure6(c) }},
		{"fig7", func(c Config) (Result, error) { return Figure7(c) }},
		{"fig8", func(c Config) (Result, error) { return Figure8(c) }},
		{"fig9", func(c Config) (Result, error) { return Figure9(c) }},
		{"table1", func(c Config) (Result, error) { return Table1(c) }},
		{"fig10", func(c Config) (Result, error) { return Figure10(c) }},
		{"fig11", func(c Config) (Result, error) { return Figure11(c) }},
		{"fig12", func(c Config) (Result, error) { return Figure12(c) }},
		{"fig13", func(c Config) (Result, error) { return Figure13(c) }},
		{"fig14", func(c Config) (Result, error) { return Figure14(c) }},
		{"fig15", func(c Config) (Result, error) { return Figure15(c) }},
		{"fig16", func(c Config) (Result, error) { return Figure16(c) }},
		{"ablation", func(c Config) (Result, error) { return Ablation(c) }},
	}
}

// ByID runs one experiment by identifier.
func ByID(id string, cfg Config) (Result, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(cfg)
		}
	}
	return nil, fmt.Errorf("tables: unknown experiment %q (have fig3..fig16, table1, ablation)", id)
}
