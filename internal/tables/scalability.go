package tables

import (
	"fmt"

	"mpisim/internal/apps"
	"mpisim/internal/core"
	"mpisim/internal/hostmodel"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
)

// --- Table 1: memory usage ------------------------------------------------

// Table1 reproduces the memory-usage comparison: total simulator memory
// for target-program state under direct execution vs the analytical
// model, and the reduction factor. The direct-execution column is the
// analytic estimate (validated against actual runs in the test suite),
// since — as in the paper — the largest configurations exist precisely
// because direct execution cannot hold them.
func Table1(cfg Config) (*Table, error) {
	type row struct {
		label  string
		prog   string
		ranks  int
		inputs map[string]float64
	}
	kt1 := cfg.pick(64, 255)
	kt2 := cfg.pick(100, 1000)
	p1 := cfg.pick(490, 4900)
	if cfg.RankCap > 0 && p1 > cfg.RankCap {
		p1 = cfg.RankCap
	}
	g1x, g1y := apps.ProcGrid(p1)
	g2x, g2y := apps.ProcGrid(64)
	nA := cfg.pick(32, 64)
	nC := cfg.pick(64, 162)
	nT := cfg.pick(256, 2048)
	rows := []row{
		{fmt.Sprintf("Sweep3D, 4x4x%d per proc", kt1), "sweep3d", p1,
			apps.Sweep3DInputs(4, 4, kt1, kt1/4, g1x, g1y)},
		{fmt.Sprintf("Sweep3D, 6x6x%d per proc", kt2), "sweep3d", 64,
			apps.Sweep3DInputs(6, 6, kt2, kt2/4, g2x, g2y)},
		{fmt.Sprintf("SP, class A (%d^3)", nA), "nassp", 4, apps.NASSPInputs(nA, 2, 2)},
		{fmt.Sprintf("SP, class C (%d^3)", nC), "nassp", 4, apps.NASSPInputs(nC, 2, 2)},
		{fmt.Sprintf("Tomcatv, %dx%d", nT, nT), "tomcatv", 64, apps.TomcatvInputs(nT, 2)},
	}
	out := &Table{
		ID:     "table1",
		Title:  "Memory usage in MPI-SIM-DE and MPI-SIM-AM",
		Header: []string{"configuration", "procs", "DE memory", "AM memory", "reduction"},
		Notes: []string{
			"memory is target-program array state; the paper additionally counts simulator overhead",
		},
	}
	reg := apps.Registry()
	for _, rw := range rows {
		r, err := core.NewRunner(reg[rw.prog].Build(), machineFor(machine.IBMSP(), cfg))
		if err != nil {
			return nil, err
		}
		deMem, err := r.DEMemory(rw.ranks, rw.inputs)
		if err != nil {
			return nil, err
		}
		amMem, err := r.AMMemory(rw.ranks, rw.inputs)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, []string{
			rw.label, fmt.Sprintf("%d", rw.ranks),
			fmtBytes(deMem), fmtBytes(amMem),
			fmt.Sprintf("%.0fx", float64(deMem)/float64(amMem)),
		})
	}
	return out, nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// --- Figures 10-11: simulator scalability --------------------------------

// sweepScalability produces the measured / DE / AM predicted-runtime
// curves for a fixed per-processor Sweep3D size, with direct execution
// hitting a memory wall at deCutoff target processors (the paper reports
// walls at 2500 processors for the 4x4x255 size and 400 for 6x6x1000;
// the wall models the aggregate memory of the 64-node host partition).
func sweepScalability(cfg Config, id string, it, jt, kt int, ranks []int,
	deCutoff, measCutoff int) (*Figure, error) {
	r, err := newRunner(apps.Sweep3D(), machine.IBMSP(), cfg)
	if err != nil {
		return nil, err
	}
	mk := kt / 4
	inputsFor := func(p int) map[string]float64 {
		npx, npy := apps.ProcGrid(p)
		return apps.Sweep3DInputs(it, jt, kt, mk, npx, npy)
	}
	if _, err := r.Calibrate(4, inputsFor(4)); err != nil {
		return nil, err
	}
	perRank, err := r.DEMemory(1, inputsFor(1))
	if err != nil {
		return nil, err
	}
	r.MemoryLimit = perRank * int64(deCutoff)
	meas := Series{Name: "measured"}
	de := Series{Name: "MPI-SIM-DE"}
	am := Series{Name: "MPI-SIM-AM"}
	deWall := 0
	for _, p := range ranks {
		aRep, err := r.Run(core.Abstract, p, inputsFor(p))
		if err != nil {
			return nil, fmt.Errorf("AM ranks=%d: %w", p, err)
		}
		am.Points = append(am.Points, Point{float64(p), aRep.Time})
		if p <= measCutoff {
			mRep, err := r.Run(core.Measured, p, inputsFor(p))
			if err != nil {
				return nil, err
			}
			meas.Points = append(meas.Points, Point{float64(p), mRep.Time})
		}
		if p <= deCutoff {
			dRep, err := r.Run(core.DirectExec, p, inputsFor(p))
			if err != nil {
				if mpi.IsMemoryLimit(err) {
					deWall = p
					continue
				}
				return nil, err
			}
			de.Points = append(de.Points, Point{float64(p), dRep.Time})
		} else if deWall == 0 {
			deWall = p
		}
	}
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Validation and scalability of Sweep3D, %dx%dx%d per processor (IBM SP model)", it, jt, kt),
		XLabel: "target processors", YLabel: "predicted runtime (s)",
		Series: []Series{meas, am, de},
	}
	if deWall > 0 {
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("direct execution exceeds the host memory budget beyond ~%d target processors", deCutoff))
	}
	fig.Notes = append(fig.Notes,
		"measured curve limited to the rank counts a real machine allocation would permit")
	return fig, nil
}

// Figure10 is the 4x4x255-per-processor scalability study: the paper
// simulates up to 10,000 target processors with the analytical model
// while direct execution stops near 2,500.
func Figure10(cfg Config) (*Figure, error) {
	ranks := cfg.ranksFor(
		[]int{16, 64, 256, 490, 1024, 2048, 4096},
		[]int{16, 64, 256, 1024, 2500, 4900, 10000})
	return sweepScalability(cfg, "fig10",
		4, 4, cfg.pick(64, 255), ranks, cfg.pick(256, 2500), cfg.pick(64, 128))
}

// Figure11 is the 6x6x1000-per-processor study: direct execution cannot
// go beyond a few hundred processors, the analytical model scales on.
func Figure11(cfg Config) (*Figure, error) {
	ranks := cfg.ranksFor(
		[]int{16, 64, 100, 196, 400, 784},
		[]int{16, 64, 100, 400, 1600, 6400})
	return sweepScalability(cfg, "fig11",
		6, 6, cfg.pick(100, 1000), ranks, cfg.pick(100, 400), cfg.pick(64, 128))
}

// --- Figures 12-16: simulator performance --------------------------------

// hostWorkloads runs DE and AM for a configuration and derives their
// host-cost workloads. The DE workload can be derived from the AM run
// when direct execution is infeasible: the communication structure is
// identical and the delay times are exactly the computation DE would
// execute.
func hostWorkloads(r *core.Runner, ranks int, inputs map[string]float64,
	deFromAM bool) (app float64, de, am hostmodel.Workload, err error) {
	aRep, err := r.Run(core.Abstract, ranks, inputs)
	if err != nil {
		return 0, de, am, err
	}
	am = hostmodel.FromReport(aRep, false, r.Lookahead())
	if deFromAM {
		de = hostmodel.FromReport(aRep, false, r.Lookahead())
		for i, rs := range aRep.Ranks {
			de.ExecSeconds[i] = float64(rs.DelayTime) +
				float64(rs.ComputeTime-rs.DelayTime) - float64(rs.CommCPUTime)
			if de.ExecSeconds[i] < 0 {
				de.ExecSeconds[i] = 0
			}
		}
		app = aRep.Time
		return app, de, am, nil
	}
	dRep, err := r.Run(core.DirectExec, ranks, inputs)
	if err != nil {
		return 0, de, am, err
	}
	de = hostmodel.FromReport(dRep, true, r.Lookahead())
	mRep, err := r.Run(core.Measured, ranks, inputs)
	if err != nil {
		return 0, de, am, err
	}
	return mRep.Time, de, am, nil
}

// absolutePerformance builds an app vs DE vs AM simulator-runtime figure
// with hosts == targets for every point (paper Figures 12 and 13).
func absolutePerformance(cfg Config, id, title string, runner *core.Runner,
	inputsFor func(int) map[string]float64, ranks []int, calRanks int) (*Figure, error) {
	if _, err := runner.Calibrate(calRanks, inputsFor(calRanks)); err != nil {
		return nil, err
	}
	hp := hostmodel.Default()
	appS := Series{Name: "application (measured)"}
	deS := Series{Name: "MPI-SIM-DE"}
	amS := Series{Name: "MPI-SIM-AM"}
	for _, p := range ranks {
		app, de, am, err := hostWorkloads(runner, p, inputsFor(p), false)
		if err != nil {
			return nil, fmt.Errorf("ranks=%d: %w", p, err)
		}
		deT, err := hp.Runtime(de, p)
		if err != nil {
			return nil, err
		}
		amT, err := hp.Runtime(am, p)
		if err != nil {
			return nil, err
		}
		appS.Points = append(appS.Points, Point{float64(p), app})
		deS.Points = append(deS.Points, Point{float64(p), deT})
		amS.Points = append(amS.Points, Point{float64(p), amT})
	}
	return &Figure{
		ID: id, Title: title,
		XLabel: "processors (hosts = targets)", YLabel: "runtime (s)",
		Series: []Series{appS, deS, amS},
		Notes:  []string{"simulator runtimes from the calibrated host-cost model (see DESIGN.md)"},
	}, nil
}

// Figure12 compares simulator runtime against the application for NAS SP
// class A: DE runs about twice as slow as the application, AM runs
// faster than the application.
func Figure12(cfg Config) (*Figure, error) {
	r, err := newRunner(apps.NASSP(), machine.IBMSP(), cfg)
	if err != nil {
		return nil, err
	}
	// Class A at these processor counts is computation-dominated; the
	// scaled grid must be large enough to preserve that, or the pipeline
	// fill time would distort the DE-to-application ratio.
	nx := cfg.pick(56, 64)
	steps := cfg.pick(2, 50)
	inputsFor := func(ranks int) map[string]float64 {
		return apps.NASSPInputs(nx, steps, apps.SquareSide(ranks))
	}
	desc := fmt.Sprintf("%d^3, %d steps", nx, steps)
	return absolutePerformance(cfg, "fig12",
		"Absolute performance of MPI-Sim for NAS SP class A ("+desc+")",
		r, inputsFor, cfg.ranksFor([]int{4, 9, 16, 25}, []int{4, 9, 16, 25, 36, 64, 100}), 16)
}

// Figure13 is the same comparison for Tomcatv, where AM stays nearly
// flat while the application time falls from large to small.
func Figure13(cfg Config) (*Figure, error) {
	r, err := newRunner(apps.Tomcatv(), machine.IBMSP(), cfg)
	if err != nil {
		return nil, err
	}
	inputsFor, desc := cfg.tomcatvInputsFor()
	return absolutePerformance(cfg, "fig13",
		"Absolute performance of MPI-Sim for Tomcatv ("+desc+")",
		r, inputsFor, cfg.ranksFor([]int{4, 8, 16, 32, 64}, []int{4, 8, 16, 32, 64}), 4)
}

// fig14Data computes simulator runtimes versus host processors for the
// fixed-total Sweep3D configuration on 64 target processors.
func fig14Data(cfg Config) (app float64, hosts []int, deT, amT []float64, err error) {
	r, err := newRunner(apps.Sweep3D(), machine.IBMSP(), cfg)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	total := cfg.pick(36, 150)
	inputsFor := func(p int) map[string]float64 { return sweepFixedTotalInputs(total, p) }
	if _, err := r.Calibrate(4, inputsFor(4)); err != nil {
		return 0, nil, nil, nil, err
	}
	const targets = 64
	app, de, am, err := hostWorkloads(r, targets, inputsFor(targets), false)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	hp := hostmodel.Default()
	hosts = []int{1, 2, 4, 8, 16, 32, 64}
	for _, h := range hosts {
		dt, err := hp.Runtime(de, h)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		at, err := hp.Runtime(am, h)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		deT = append(deT, dt)
		amT = append(amT, at)
	}
	return app, hosts, deT, amT, nil
}

// Figure14 shows the runtime of both simulators for Sweep3D on 64 target
// processors as the number of host processors varies from 1 to 64.
func Figure14(cfg Config) (*Figure, error) {
	app, hosts, deT, amT, err := fig14Data(cfg)
	if err != nil {
		return nil, err
	}
	deS := Series{Name: "MPI-SIM-DE"}
	amS := Series{Name: "MPI-SIM-AM"}
	appS := Series{Name: "measured application"}
	for i, h := range hosts {
		deS.Points = append(deS.Points, Point{float64(h), deT[i]})
		amS.Points = append(amS.Points, Point{float64(h), amT[i]})
		appS.Points = append(appS.Points, Point{float64(h), app})
	}
	return &Figure{
		ID: "fig14", Title: "Parallel performance of MPI-Sim (Sweep3D, 64 target processors)",
		XLabel: "host processors", YLabel: "runtime (s)",
		Series: []Series{deS, amS, appS},
		Notes:  []string{"application time shown as a flat reference line"},
	}, nil
}

// Figure15 shows the self-relative speedup of MPI-SIM-AM from the same
// experiment; the paper reports about 15 at 64 hosts.
func Figure15(cfg Config) (*Figure, error) {
	_, hosts, _, amT, err := fig14Data(cfg)
	if err != nil {
		return nil, err
	}
	s := Series{Name: "MPI-SIM-AM speedup"}
	for i, h := range hosts {
		s.Points = append(s.Points, Point{float64(h), amT[0] / amT[i]})
	}
	return &Figure{
		ID: "fig15", Title: "Speedup of MPI-SIM-AM (Sweep3D, 64 target processors)",
		XLabel: "host processors", YLabel: "speedup",
		Series: []Series{s},
	}, nil
}

// Figure16 compares the simulators' runtimes on 64 host processors as
// the number of target processors (and with it the total problem size,
// fixed per-processor) grows. The DE workload beyond its memory wall is
// derived from the AM run's delay accounting.
func Figure16(cfg Config) (*Figure, error) {
	r, err := newRunner(apps.Sweep3D(), machine.IBMSP(), cfg)
	if err != nil {
		return nil, err
	}
	kt := cfg.pick(100, 1000)
	inputsFor := func(p int) map[string]float64 {
		npx, npy := apps.ProcGrid(p)
		return apps.Sweep3DInputs(6, 6, kt, kt/4, npx, npy)
	}
	if _, err := r.Calibrate(4, inputsFor(4)); err != nil {
		return nil, err
	}
	hp := hostmodel.Default()
	targets := cfg.ranksFor([]int{64, 100, 196, 400, 784}, []int{64, 100, 400, 900, 1600})
	deS := Series{Name: "MPI-SIM-DE (modeled)"}
	amS := Series{Name: "MPI-SIM-AM"}
	for _, p := range targets {
		_, de, am, err := hostWorkloads(r, p, inputsFor(p), true)
		if err != nil {
			return nil, fmt.Errorf("targets=%d: %w", p, err)
		}
		dt, err := hp.Runtime(de, 64)
		if err != nil {
			return nil, err
		}
		at, err := hp.Runtime(am, 64)
		if err != nil {
			return nil, err
		}
		deS.Points = append(deS.Points, Point{float64(p), dt})
		amS.Points = append(amS.Points, Point{float64(p), at})
	}
	return &Figure{
		ID: "fig16", Title: fmt.Sprintf("Simulator runtime, 6x6x%d per processor, 64 host processors", kt),
		XLabel: "target processors", YLabel: "runtime (s)",
		Series: []Series{deS, amS},
		Notes:  []string{"DE workload beyond its memory wall is synthesized from the AM run's delay accounting"},
	}, nil
}
