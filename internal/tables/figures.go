package tables

import (
	"fmt"
	"math"

	"mpisim/internal/apps"
	"mpisim/internal/core"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
)

// ranksFor picks the scaled or full rank list and applies RankCap.
func (cfg Config) ranksFor(scaled, full []int) []int {
	list := scaled
	if cfg.Full {
		list = full
	}
	if cfg.RankCap <= 0 {
		return list
	}
	var out []int
	for _, r := range list {
		if r <= cfg.RankCap {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		out = list[:1]
	}
	return out
}

func (cfg Config) pick(scaled, full int) int {
	if cfg.Full {
		return full
	}
	return scaled
}

// machineFor applies the experiment-wide topology/placement overrides
// to a freshly constructed machine model.
func machineFor(m *machine.Model, cfg Config) *machine.Model {
	if cfg.Topology != "" {
		m.Topology = cfg.Topology
	}
	if cfg.Placement != "" {
		m.Placement = cfg.Placement
	}
	return m
}

// newRunner builds a calibrated-capable runner.
func newRunner(prog *ir.Program, m *machine.Model, cfg Config) (*core.Runner, error) {
	r, err := core.NewRunner(prog, machineFor(m, cfg))
	if err != nil {
		return nil, err
	}
	r.HostWorkers = cfg.HostWorkers
	r.RealParallel = cfg.HostWorkers > 1
	r.Metrics = cfg.Metrics
	r.Tracer = cfg.Tracer
	r.Timeline = cfg.Timeline
	r.RunInfo = cfg.RunInfo
	return r, nil
}

// --- Figures 3-6: validation curves -------------------------------------

// validationCurves runs measured / DE / AM over a rank list.
func validationCurves(r *core.Runner, inputsFor func(int) map[string]float64,
	ranks []int, calRanks int, withDE bool) ([]Series, error) {
	if _, err := r.Calibrate(calRanks, inputsFor(calRanks)); err != nil {
		return nil, err
	}
	meas := Series{Name: "measured"}
	de := Series{Name: "MPI-SIM-DE"}
	am := Series{Name: "MPI-SIM-AM"}
	for _, p := range ranks {
		v, err := r.Validate(p, inputsFor(p), calRanks, inputsFor(calRanks))
		if err != nil {
			return nil, fmt.Errorf("ranks=%d: %w", p, err)
		}
		meas.Points = append(meas.Points, Point{float64(p), v.MeasuredTime})
		de.Points = append(de.Points, Point{float64(p), v.DETime})
		am.Points = append(am.Points, Point{float64(p), v.AMTime})
	}
	if withDE {
		return []Series{meas, am, de}, nil
	}
	return []Series{meas, am}, nil
}

// tomcatvInputsFor returns the fixed-size Tomcatv input builder.
func (cfg Config) tomcatvInputsFor() (func(int) map[string]float64, string) {
	n := cfg.pick(192, 2048)
	iter := cfg.pick(2, 100)
	return func(int) map[string]float64 { return apps.TomcatvInputs(n, iter) },
		fmt.Sprintf("%dx%d, %d iterations", n, n, iter)
}

// Figure3 validates Tomcatv: measured vs MPI-SIM-DE vs MPI-SIM-AM over
// processor counts (paper: 2048x2048 on the IBM SP, 4-64 processors).
func Figure3(cfg Config) (*Figure, error) {
	r, err := newRunner(apps.Tomcatv(), machine.IBMSP(), cfg)
	if err != nil {
		return nil, err
	}
	inputsFor, desc := cfg.tomcatvInputsFor()
	series, err := validationCurves(r, inputsFor,
		cfg.ranksFor([]int{4, 8, 16, 32}, []int{4, 8, 16, 32, 64}), 16, true)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig3", Title: "Validation of MPI-Sim for Tomcatv (" + desc + ", IBM SP model)",
		XLabel: "processors", YLabel: "time (s)", Series: series,
		Notes: []string{"w_i calibrated at 16 processors, reused for all points (as in the paper)"},
	}, nil
}

// sweepFixedTotalInputs returns inputs for a fixed total grid divided
// over the process grid (the paper's 150^3 study).
func sweepFixedTotalInputs(total int, ranks int) map[string]float64 {
	npx, npy := apps.ProcGrid(ranks)
	it := (total + npx - 1) / npx
	jt := (total + npy - 1) / npy
	mk := total / 4
	if mk < 1 {
		mk = 1
	}
	return apps.Sweep3DInputs(it, jt, total, mk, npx, npy)
}

// Figure4 validates Sweep3D at fixed total problem size (paper: 150^3,
// up to 64 processors).
func Figure4(cfg Config) (*Figure, error) {
	r, err := newRunner(apps.Sweep3D(), machine.IBMSP(), cfg)
	if err != nil {
		return nil, err
	}
	total := cfg.pick(36, 150)
	inputsFor := func(ranks int) map[string]float64 { return sweepFixedTotalInputs(total, ranks) }
	series, err := validationCurves(r, inputsFor,
		cfg.ranksFor([]int{4, 8, 16, 32, 64}, []int{4, 8, 16, 32, 64}), 16, true)
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "fig4", Title: fmt.Sprintf("Validation of Sweep3D, fixed total size %d^3 (IBM SP model)", total),
		XLabel: "processors", YLabel: "time (s)", Series: series,
	}, nil
}

// spInputsFor builds class inputs for NAS SP.
func (cfg Config) spInputsFor(classC bool) (func(int) map[string]float64, string) {
	nx := cfg.pick(40, 64) // "class A"
	if classC {
		nx = cfg.pick(80, 162) // "class C"
	}
	steps := cfg.pick(2, 50)
	return func(ranks int) map[string]float64 {
		return apps.NASSPInputs(nx, steps, apps.SquareSide(ranks))
	}, fmt.Sprintf("%d^3, %d steps", nx, steps)
}

// Figure5 validates NAS SP class A (measured vs MPI-SIM-AM; paper
// Figure 5). Task times come from the 16-processor class A run.
func Figure5(cfg Config) (*Figure, error) {
	return spValidation(cfg, false, "fig5")
}

// Figure6 validates NAS SP class C with task times still calibrated on
// class A (the paper's headline cross-class projection).
func Figure6(cfg Config) (*Figure, error) {
	return spValidation(cfg, true, "fig6")
}

func spValidation(cfg Config, classC bool, id string) (*Figure, error) {
	r, err := newRunner(apps.NASSP(), machine.IBMSP(), cfg)
	if err != nil {
		return nil, err
	}
	// Calibration is always on class A at 16 processors (paper §4.2).
	calInputsFor, _ := cfg.spInputsFor(false)
	if _, err := r.Calibrate(16, calInputsFor(16)); err != nil {
		return nil, err
	}
	inputsFor, desc := cfg.spInputsFor(classC)
	ranks := cfg.ranksFor([]int{4, 9, 16, 25}, []int{4, 9, 16, 25, 36, 64})
	meas := Series{Name: "measured"}
	am := Series{Name: "MPI-SIM-AM"}
	for _, p := range ranks {
		mRep, err := r.Run(core.Measured, p, inputsFor(p))
		if err != nil {
			return nil, err
		}
		aRep, err := r.Run(core.Abstract, p, inputsFor(p))
		if err != nil {
			return nil, err
		}
		meas.Points = append(meas.Points, Point{float64(p), mRep.Time})
		am.Points = append(am.Points, Point{float64(p), aRep.Time})
	}
	cls := "A"
	if classC {
		cls = "C"
	}
	return &Figure{
		ID: id, Title: fmt.Sprintf("Validation for NAS SP class %s (%s, IBM SP model)", cls, desc),
		XLabel: "processors", YLabel: "runtime (s)", Series: []Series{meas, am},
		Notes: []string{"task times calibrated on class A at 16 processors"},
	}, nil
}

// Figure7 summarizes the percent error of MPI-SIM-AM against measured
// for the three applications (paper Figure 7: all within 16%).
func Figure7(cfg Config) (*Figure, error) {
	out := &Figure{
		ID: "fig7", Title: "Percent error of MPI-SIM-AM predictions vs measured",
		XLabel: "processors", YLabel: "% error",
	}
	type app struct {
		name      string
		prog      *ir.Program
		inputsFor func(int) map[string]float64
		ranks     []int
		calRanks  int
	}
	tomIn, _ := cfg.tomcatvInputsFor()
	spIn, _ := cfg.spInputsFor(true)
	spCal, _ := cfg.spInputsFor(false)
	total := cfg.pick(36, 150)
	cases := []app{
		{"Tomcatv", apps.Tomcatv(), tomIn, cfg.ranksFor([]int{4, 16, 32}, []int{4, 8, 16, 32, 64}), 4},
		{"Sweep3D", apps.Sweep3D(), func(r int) map[string]float64 { return sweepFixedTotalInputs(total, r) },
			cfg.ranksFor([]int{4, 16, 64}, []int{4, 16, 64}), 4},
		{"SP, Class C", apps.NASSP(), spIn, cfg.ranksFor([]int{4, 16}, []int{4, 16, 36, 64}), 16},
	}
	for _, a := range cases {
		r, err := newRunner(a.prog, machine.IBMSP(), cfg)
		if err != nil {
			return nil, err
		}
		calIn := a.inputsFor(a.calRanks)
		if a.name == "SP, Class C" {
			calIn = spCal(a.calRanks)
		}
		if _, err := r.Calibrate(a.calRanks, calIn); err != nil {
			return nil, err
		}
		s := Series{Name: a.name}
		for _, p := range a.ranks {
			v, err := r.Validate(p, a.inputsFor(p), a.calRanks, calIn)
			if err != nil {
				return nil, fmt.Errorf("%s ranks=%d: %w", a.name, p, err)
			}
			s.Points = append(s.Points, Point{float64(p), 100 * v.AMError})
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

// --- Figures 8-9: SAMPLE on the Origin 2000 ------------------------------

// sampleSweep runs the SAMPLE kernel over a computation-granularity
// sweep and returns, per pattern, (ratio, measured, predicted, %diff).
func sampleSweep(cfg Config) (map[string][][4]float64, error) {
	m := machineFor(machine.Origin2000(), cfg)
	ranks := 8
	works := []int{200, 1000, 5000, 20000, 100000, 400000}
	if cfg.Full {
		works = []int{100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000}
	}
	out := map[string][][4]float64{}
	for _, pat := range []struct {
		name string
		id   int
	}{{"wavefront", apps.PatternWavefront}, {"nearest-neighbour", apps.PatternNearestNeighbour}} {
		r, err := core.NewRunner(apps.Sample(), m)
		if err != nil {
			return nil, err
		}
		r.Metrics = cfg.Metrics
		r.Tracer = cfg.Tracer
		r.Timeline = cfg.Timeline
		r.RunInfo = cfg.RunInfo
		for _, work := range works {
			inputs := apps.SampleInputs(pat.id, work, 500, cfg.pick(6, 20), 2, 4)
			r.TaskTimes = nil
			v, err := r.Validate(ranks, inputs, ranks, inputs)
			if err != nil {
				return nil, fmt.Errorf("%s work=%d: %w", pat.name, work, err)
			}
			// Communication-to-computation ratio measured from the run.
			var comm, comp float64
			for _, rs := range v.MeasuredRep.Ranks {
				comm += float64(rs.BlockedTime) + float64(rs.CommCPUTime)
				comp += float64(rs.ComputeTime) - float64(rs.CommCPUTime)
			}
			ratio := comm / comp
			diff := 100 * (v.AMTime - v.MeasuredTime) / v.MeasuredTime
			out[pat.name] = append(out[pat.name],
				[4]float64{ratio, v.MeasuredTime, v.AMTime, diff})
		}
	}
	return out, nil
}

// Figure8 plots SAMPLE measured vs predicted execution time against the
// communication-to-computation ratio for both patterns (Origin 2000).
func Figure8(cfg Config) (*Figure, error) {
	data, err := sampleSweep(cfg)
	if err != nil {
		return nil, err
	}
	out := &Figure{
		ID: "fig8", Title: "Validation of SAMPLE on the Origin 2000 model",
		XLabel: "comm/comp ratio", YLabel: "time (s)",
		Notes: []string{"8 ranks on a 2x4 grid; ratio measured from the detailed run"},
	}
	for _, name := range []string{"wavefront", "nearest-neighbour"} {
		meas := Series{Name: name + "-measured"}
		pred := Series{Name: name + "-MPI-SIM-AM"}
		for _, row := range data[name] {
			x := roundSig(row[0], 2)
			meas.Points = append(meas.Points, Point{x, row[1]})
			pred.Points = append(pred.Points, Point{x, row[2]})
		}
		out.Series = append(out.Series, meas, pred)
	}
	return out, nil
}

// Figure9 plots the percent variation of predicted from measured time as
// the communication-to-computation ratio grows (paper: accurate when
// computation dominates, up to ~15% when communication dominates).
func Figure9(cfg Config) (*Figure, error) {
	data, err := sampleSweep(cfg)
	if err != nil {
		return nil, err
	}
	out := &Figure{
		ID: "fig9", Title: "Effect of communication-to-computation ratio on SAMPLE predictions",
		XLabel: "comm/comp ratio", YLabel: "% difference",
	}
	for _, name := range []string{"wavefront", "nearest-neighbour"} {
		s := Series{Name: name}
		for _, row := range data[name] {
			s.Points = append(s.Points, Point{roundSig(row[0], 2), row[3]})
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

func roundSig(x float64, digits int) float64 {
	if x == 0 {
		return 0
	}
	mag := math.Pow(10, float64(digits-1)-math.Floor(math.Log10(math.Abs(x))))
	return math.Round(x*mag) / mag
}
