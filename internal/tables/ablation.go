package tables

import (
	"fmt"

	"mpisim/internal/apps"
	"mpisim/internal/compiler"
	"mpisim/internal/core"
	"mpisim/internal/interp"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
)

// Ablation quantifies the design choices behind the paper's results on
// one workload (Tomcatv): what condensation granularity, program
// slicing, and the choice of communication model each contribute. It is
// not a table from the paper; it substantiates the claims its design
// sections make (§3.1-§3.3).
func Ablation(cfg Config) (*Table, error) {
	n := cfg.pick(160, 512)
	inputs := apps.TomcatvInputs(n, 2)
	const ranks = 4
	m := machineFor(machine.IBMSP(), cfg)
	prog := apps.Tomcatv()

	meas, err := interp.Run(prog, interp.Config{
		Ranks: ranks, Machine: m, Comm: mpi.Detailed, Inputs: inputs})
	if err != nil {
		return nil, err
	}

	out := &Table{
		ID:     "ablation",
		Title:  fmt.Sprintf("Design-choice ablation (Tomcatv %dx%d, %d ranks)", n, n, ranks),
		Header: []string{"variant", "tasks", "predicted", "error", "AM memory"},
		Notes: []string{
			"error is the prediction's deviation from the measured (detailed) run",
			"abstract-comm additionally drops all event-level communication simulation",
		},
	}
	addRow := func(name string, opts compiler.Options, comm mpi.CommModel) error {
		res, err := compiler.CompileOpts(prog, opts)
		if err != nil {
			return err
		}
		cal := interp.NewCalibration()
		if _, err := interp.Run(res.Timer, interp.Config{
			Ranks: ranks, Machine: m, Comm: mpi.Detailed,
			Inputs: inputs, Calibration: cal}); err != nil {
			return err
		}
		am, err := interp.Run(res.Simplified, interp.Config{
			Ranks: ranks, Machine: m, Comm: comm,
			Inputs: inputs, TaskTimes: cal.TaskTimes()})
		if err != nil {
			return err
		}
		errPct := 100 * (am.Time - meas.Time) / meas.Time
		out.Rows = append(out.Rows, []string{
			name, fmt.Sprintf("%d", len(res.TaskVars)),
			fmt.Sprintf("%.5gs", am.Time),
			fmt.Sprintf("%+.1f%%", errPct),
			fmtBytes(am.TotalPeakBytes),
		})
		return nil
	}
	if err := addRow("paper (regions + slicing)", compiler.Options{}, mpi.Analytic); err != nil {
		return nil, err
	}
	if err := addRow("per-leaf condensation", compiler.Options{NoCondense: true}, mpi.Analytic); err != nil {
		return nil, err
	}
	if err := addRow("no program slicing", compiler.Options{NoSlice: true}, mpi.Analytic); err != nil {
		return nil, err
	}
	if err := addRow("abstract communication", compiler.Options{}, mpi.AbstractComm); err != nil {
		return nil, err
	}
	// Reference rows: the event-level simulators.
	de, err := interp.Run(prog, interp.Config{
		Ranks: ranks, Machine: m, Comm: mpi.Analytic, Inputs: inputs})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, []string{
		"MPI-SIM-DE (reference)", "-",
		fmt.Sprintf("%.5gs", de.Time),
		fmt.Sprintf("%+.1f%%", 100*(de.Time-meas.Time)/meas.Time),
		fmtBytes(de.TotalPeakBytes),
	})
	// Static task-time estimation (no calibration run at all).
	r, err := core.NewRunner(prog, m)
	if err != nil {
		return nil, err
	}
	r.Metrics = cfg.Metrics
	r.Tracer = cfg.Tracer
	r.Timeline = cfg.Timeline
	r.RunInfo = cfg.RunInfo
	if _, err := r.EstimateTaskTimes(ranks, inputs); err != nil {
		return nil, err
	}
	sRep, err := r.Run(core.Abstract, ranks, inputs)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, []string{
		"static w_i (no measurement)", fmt.Sprintf("%d", len(r.Compiled.TaskVars)),
		fmt.Sprintf("%.5gs", sRep.Time),
		fmt.Sprintf("%+.1f%%", 100*(sRep.Time-meas.Time)/meas.Time),
		fmtBytes(sRep.TotalPeakBytes),
	})
	return out, nil
}
