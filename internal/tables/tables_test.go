package tables

import (
	"fmt"
	"strings"
	"testing"
)

// testCfg bounds experiment size so the suite stays fast.
func testCfg() Config { return Config{RankCap: 16} }

func TestRenderFigure(t *testing.T) {
	f := &Figure{
		ID: "figX", Title: "demo", XLabel: "p", YLabel: "t",
		Series: []Series{
			{Name: "a", Points: []Point{{4, 1.5}, {8, 2.5}}},
			{Name: "b", Points: []Point{{4, 3.0}}},
		},
		Notes: []string{"hello"},
	}
	out := f.Render()
	for _, want := range []string{"figX: demo", "p", "a", "b", "1.5", "note: hello", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if f.Name() != "figX" {
		t.Fatal("Name wrong")
	}
}

func TestRenderTable(t *testing.T) {
	tb := &Table{ID: "tableX", Title: "demo", Header: []string{"a", "b"},
		Rows: [][]string{{"x", "y"}}}
	out := tb.Render()
	if !strings.Contains(out, "tableX") || !strings.Contains(out, "x  y") {
		t.Fatalf("table render:\n%s", out)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99", testCfg()); err == nil {
		t.Fatal("expected unknown experiment error")
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "table1", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

// seriesByName finds a series in a figure.
func seriesByName(t *testing.T, f *Figure, name string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("%s: no series %q", f.ID, name)
	return Series{}
}

// maxRelGap returns the maximum relative |a-b|/b across common x.
func maxRelGap(a, b Series) float64 {
	worst := 0.0
	for _, pa := range a.Points {
		for _, pb := range b.Points {
			if pa.X == pb.X && pb.Y != 0 {
				d := (pa.Y - pb.Y) / pb.Y
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

func TestFigure3Shape(t *testing.T) {
	f, err := Figure3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	am := seriesByName(t, f, "MPI-SIM-AM")
	meas := seriesByName(t, f, "measured")
	if len(am.Points) == 0 {
		t.Fatal("empty AM series")
	}
	if gap := maxRelGap(am, meas); gap > 0.17 {
		t.Errorf("AM error %.3f > 17%%\n%s", gap, f.Render())
	}
	de := seriesByName(t, f, "MPI-SIM-DE")
	if gap := maxRelGap(de, meas); gap > 0.10 {
		t.Errorf("DE error %.3f > 10%%", gap)
	}
	// Time must decrease with processors (strong scaling).
	if meas.Points[0].Y <= meas.Points[len(meas.Points)-1].Y {
		t.Errorf("no strong scaling: %v", meas.Points)
	}
}

func TestFigure4Shape(t *testing.T) {
	f, err := Figure4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	gap := maxRelGap(seriesByName(t, f, "MPI-SIM-AM"), seriesByName(t, f, "measured"))
	if gap > 0.17 {
		t.Errorf("Sweep3D AM error %.3f > 17%%\n%s", gap, f.Render())
	}
}

func TestFigures5And6Shape(t *testing.T) {
	f5, err := Figure5(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if gap := maxRelGap(seriesByName(t, f5, "MPI-SIM-AM"), seriesByName(t, f5, "measured")); gap > 0.10 {
		t.Errorf("SP class A AM error %.3f\n%s", gap, f5.Render())
	}
	f6, err := Figure6(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if gap := maxRelGap(seriesByName(t, f6, "MPI-SIM-AM"), seriesByName(t, f6, "measured")); gap > 0.17 {
		t.Errorf("SP class C AM error %.3f\n%s", gap, f6.Render())
	}
	// Class C runs much longer than class A at equal rank counts.
	a := seriesByName(t, f5, "measured").Points[0]
	c := seriesByName(t, f6, "measured").Points[0]
	if c.Y < 3*a.Y {
		t.Errorf("class C (%g) not much longer than class A (%g)", c.Y, a.Y)
	}
}

func TestFigure7AllErrorsBounded(t *testing.T) {
	f, err := Figure7(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("want 3 apps, got %d", len(f.Series))
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Y > 17 {
				t.Errorf("%s at %g procs: %.1f%% > 17%%", s.Name, p.X, p.Y)
			}
		}
	}
}

func TestFigures8And9Shape(t *testing.T) {
	f8, err := Figure8(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Series) != 4 {
		t.Fatalf("fig8 series = %d", len(f8.Series))
	}
	f9, err := Figure9(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Errors must be small at the computation-dominated end (small
	// ratio) for both patterns.
	for _, s := range f9.Series {
		lo := s.Points[0]
		for _, p := range s.Points {
			if p.X < lo.X {
				lo = p
			}
		}
		if abs(lo.Y) > 6 {
			t.Errorf("%s: error at smallest ratio = %.2f%%\n%s", s.Name, lo.Y, f9.Render())
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestTable1Shape(t *testing.T) {
	tb, err := Table1(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := tb.Render()
	for _, want := range []string{"Sweep3D", "SP, class A", "Tomcatv", "reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
	// Every row must show a large reduction (paper: 5x-2000x).
	for _, row := range tb.Rows {
		red := row[len(row)-1]
		if strings.HasPrefix(red, "0x") || red == "1x" || red == "2x" || red == "3x" || red == "4x" {
			t.Errorf("reduction too small in row %v", row)
		}
	}
}

func TestFigure10MemoryWall(t *testing.T) {
	cfg := Config{RankCap: 490}
	f, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	am := seriesByName(t, f, "MPI-SIM-AM")
	de := seriesByName(t, f, "MPI-SIM-DE")
	// AM reaches rank counts DE cannot.
	if len(am.Points) <= len(de.Points) {
		t.Fatalf("AM (%d pts) must outscale DE (%d pts)\n%s",
			len(am.Points), len(de.Points), f.Render())
	}
	maxAM := am.Points[len(am.Points)-1].X
	maxDE := de.Points[len(de.Points)-1].X
	if maxAM <= maxDE {
		t.Fatalf("AM max ranks %g <= DE max ranks %g", maxAM, maxDE)
	}
	// Validation at the small end.
	if gap := maxRelGap(am, seriesByName(t, f, "measured")); gap > 0.17 {
		t.Errorf("AM error %.3f > 17%%", gap)
	}
}

func TestFigure11MemoryWall(t *testing.T) {
	cfg := Config{RankCap: 196}
	f, err := Figure11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	am := seriesByName(t, f, "MPI-SIM-AM")
	de := seriesByName(t, f, "MPI-SIM-DE")
	if am.Points[len(am.Points)-1].X <= de.Points[len(de.Points)-1].X {
		t.Fatalf("AM must outscale DE\n%s", f.Render())
	}
}

func TestFigure12DESlowerAMFaster(t *testing.T) {
	f, err := Figure12(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	app := seriesByName(t, f, "application (measured)")
	de := seriesByName(t, f, "MPI-SIM-DE")
	am := seriesByName(t, f, "MPI-SIM-AM")
	for i := range app.Points {
		if de.Points[i].Y <= app.Points[i].Y {
			t.Errorf("DE (%g) not slower than app (%g) at %g procs",
				de.Points[i].Y, app.Points[i].Y, app.Points[i].X)
		}
		if am.Points[i].Y >= app.Points[i].Y {
			t.Errorf("AM (%g) not faster than app (%g) at %g procs",
				am.Points[i].Y, app.Points[i].Y, app.Points[i].X)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	f, err := Figure13(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	am := seriesByName(t, f, "MPI-SIM-AM")
	app := seriesByName(t, f, "application (measured)")
	last := len(am.Points) - 1
	if am.Points[last].Y >= app.Points[last].Y {
		t.Errorf("Tomcatv AM (%g) not faster than app (%g)",
			am.Points[last].Y, app.Points[last].Y)
	}
}

func TestFigures14And15Shape(t *testing.T) {
	f14, err := Figure14(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	de := seriesByName(t, f14, "MPI-SIM-DE")
	am := seriesByName(t, f14, "MPI-SIM-AM")
	// Both scale down with hosts; AM cheaper than DE throughout.
	for i := range de.Points {
		if am.Points[i].Y >= de.Points[i].Y {
			t.Errorf("AM not cheaper than DE at %g hosts", de.Points[i].X)
		}
	}
	if de.Points[0].Y <= de.Points[len(de.Points)-1].Y {
		t.Errorf("DE did not speed up with hosts:\n%s", f14.Render())
	}
	f15, err := Figure15(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	sp := f15.Series[0]
	last := sp.Points[len(sp.Points)-1]
	if last.Y <= 2 || last.Y > 64 {
		t.Errorf("speedup at 64 hosts = %g, want in (2, 64]", last.Y)
	}
	// Speedup must be monotone nondecreasing in this regime... allow
	// saturation but not collapse below half the peak.
	peak := 0.0
	for _, p := range sp.Points {
		if p.Y > peak {
			peak = p.Y
		}
	}
	if last.Y < peak/2 {
		t.Errorf("speedup collapsed: last=%g peak=%g", last.Y, peak)
	}
}

func TestFigure16Shape(t *testing.T) {
	f, err := Figure16(Config{RankCap: 196})
	if err != nil {
		t.Fatal(err)
	}
	de := seriesByName(t, f, "MPI-SIM-DE (modeled)")
	am := seriesByName(t, f, "MPI-SIM-AM")
	for i := range de.Points {
		if am.Points[i].Y >= de.Points[i].Y {
			t.Errorf("AM not cheaper than DE at %g targets\n%s", de.Points[i].X, f.Render())
		}
	}
	// Both grow with target count.
	if de.Points[len(de.Points)-1].Y <= de.Points[0].Y {
		t.Errorf("DE runtime did not grow with targets")
	}
}

func TestAblationShape(t *testing.T) {
	tb, err := Ablation(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d\n%s", len(tb.Rows), tb.Render())
	}
	// Row order: paper, per-leaf, no-slice, abstract-comm, DE, static.
	parseErr := func(row []string) float64 {
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSuffix(row[3], "%"), "%f", &v); err != nil {
			t.Fatalf("bad error cell %q", row[3])
		}
		if v < 0 {
			v = -v
		}
		return v
	}
	paper := parseErr(tb.Rows[0])
	noSlice := parseErr(tb.Rows[2])
	if paper > 5 {
		t.Errorf("paper-variant error %.1f%% too large\n%s", paper, tb.Render())
	}
	if noSlice < 10*paper {
		t.Errorf("slicing ablation shows no effect: paper %.2f%%, no-slice %.2f%%", paper, noSlice)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if trimFloat(64) != "64" || trimFloat(2.5) != "2.5" {
		t.Fatal("trimFloat wrong")
	}
	if fmtG(0.00012345) != "0.0001234" && fmtG(0.00012345) != "0.0001235" {
		t.Fatalf("fmtG = %q", fmtG(0.00012345))
	}
	if roundSig(123.456, 2) != 120 || roundSig(0.0123, 2) != 0.012 || roundSig(0, 3) != 0 {
		t.Fatalf("roundSig wrong: %v %v", roundSig(123.456, 2), roundSig(0.0123, 2))
	}
	if fmtBytes(2048) != "2.00KB" || fmtBytes(3<<20) != "3.00MB" ||
		fmtBytes(5<<30) != "5.00GB" || fmtBytes(7) != "7B" {
		t.Fatal("fmtBytes wrong")
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := Config{}
	if cfg.pick(1, 2) != 1 || (Config{Full: true}).pick(1, 2) != 2 {
		t.Fatal("pick wrong")
	}
	got := Config{RankCap: 10}.ranksFor([]int{4, 8, 16}, nil)
	if len(got) != 2 || got[1] != 8 {
		t.Fatalf("ranksFor = %v", got)
	}
	// Cap below all entries keeps the smallest configuration.
	got = Config{RankCap: 2}.ranksFor([]int{4, 8}, nil)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("ranksFor fallback = %v", got)
	}
}
