package apps

import "mpisim/internal/ir"

// Sweep3DInputs builds the input map. it x jt x kt is the per-processor
// grid (the paper studies 4x4x255 and 6x6x1000 cells per processor), mk
// is the k-block pipelining depth, and npx x npy the process grid.
func Sweep3DInputs(it, jt, kt, mk, npx, npy int) map[string]float64 {
	return map[string]float64{
		"IT": float64(it), "JT": float64(jt), "KT": float64(kt),
		"MK": float64(mk), "NPX": float64(npx), "NPY": float64(npy),
	}
}

// Sweep3D is the ASCI discrete-ordinates transport kernel (paper §1,
// §4.1): a 2D process decomposition in (i,j) sweeps wavefronts for all 8
// octants, pipelined in blocks of mk k-planes. Each block waits for the
// upstream i- and j-faces, computes its cells, and forwards the
// downstream faces; the per-cell work includes the data-dependent
// flux-fixup branch the paper singles out ("one minor conditional branch
// in a loop nest of Sweep3D depends on intermediate values of large 3D
// arrays").
func Sweep3D() *ir.Program {
	it, jt, kt := ir.S("IT"), ir.S("JT"), ir.S("KT")
	mk := ir.S("MK")
	npx := ir.S("NPX")
	i, j, k := ir.S("i"), ir.S("j"), ir.S("k")
	myi, myj := ir.S("myi"), ir.S("myj")
	idir, jdir := ir.S("idir"), ir.S("jdir")
	kg := ir.S("kg") // global k index of the cell

	prologue := ir.Block(
		&ir.ReadInput{Var: "IT"},
		&ir.ReadInput{Var: "JT"},
		&ir.ReadInput{Var: "KT"},
		&ir.ReadInput{Var: "MK"},
		&ir.ReadInput{Var: "NPX"},
		&ir.ReadInput{Var: "NPY"},
		ir.SetS("myi", ir.Mod(myid, npx)),
		ir.SetS("myj", ir.Bin{Op: ir.OpIDiv, L: myid, R: npx}),
		ir.SetS("nkb", ir.CeilDiv(kt, mk)),
	)

	// Source initialization: sign varies with position so the fixup
	// branch is taken irregularly.
	initNest := ir.Block(
		ir.Loop("init", "k", one, kt,
			ir.Loop("", "j", one, jt,
				ir.Loop("", "i", one, it,
					ir.SetA("SRC", ir.IX(i, j, k),
						ir.Call{Name: "sin", Arg: ir.Mul(ir.AddN(i, j, k, myid), ir.N(0.7))}),
					ir.SetA("FLUX", ir.IX(i, j, k), zero),
				),
			),
		),
	)

	// Upstream/downstream guards: the neighbour coordinate must lie on
	// the process grid.
	upI := and(ir.GE(ir.Sub(myi, idir), zero), ir.LT(ir.Sub(myi, idir), npx))
	dnI := and(ir.GE(ir.Add(myi, idir), zero), ir.LT(ir.Add(myi, idir), npx))
	upJ := and(ir.GE(ir.Sub(myj, jdir), zero), ir.LT(ir.Sub(myj, jdir), ir.S("NPY")))
	dnJ := and(ir.GE(ir.Add(myj, jdir), zero), ir.LT(ir.Add(myj, jdir), ir.S("NPY")))

	cellBody := ir.Block(
		ir.SetS("kg", ir.Add(ir.Mul(ir.Sub(ir.S("kb"), one), mk), k)),
		// Balance equation: combine source, incoming i- and j-fluxes.
		ir.SetA("PHI", ir.IX(i, j, k), ir.Mul(ir.AddN(
			ir.At("SRC", i, j, kg),
			ir.At("PHIIB", j, k),
			ir.At("PHIJB", i, k),
			ir.Mul(ir.At("FLUX", i, j, kg), ir.N(0.1)),
		), ir.N(0.3333))),
		// Flux fixup: data-dependent branch on the computed value.
		&ir.If{Cond: ir.LT(ir.At("PHI", i, j, k), zero), Then: ir.Block(
			ir.SetA("PHI", ir.IX(i, j, k), ir.Mul(ir.At("PHI", i, j, k), ir.N(-0.5))),
		)},
		ir.SetA("FLUX", ir.IX(i, j, kg),
			ir.Add(ir.At("FLUX", i, j, kg), ir.At("PHI", i, j, k))),
		// Outgoing faces (direction-agnostic cost model: last write is
		// the downstream boundary).
		ir.SetA("PHIIB", ir.IX(j, k), ir.At("PHI", i, j, k)),
		ir.SetA("PHIJB", ir.IX(i, k), ir.At("PHI", i, j, k)),
	)

	kbBody := ir.Block(
		// Wait for the upstream wavefront faces.
		&ir.If{Cond: upI, Then: ir.Block(
			&ir.Recv{Src: ir.Sub(myid, idir), Tag: 1, Array: "PHIIB",
				Section: ir.Sec(one, jt, one, mk)})},
		&ir.If{Cond: upJ, Then: ir.Block(
			&ir.Recv{Src: ir.Sub(myid, ir.Mul(jdir, npx)), Tag: 2, Array: "PHIJB",
				Section: ir.Sec(one, it, one, mk)})},
		// Compute the block.
		ir.Loop("sweep", "k", one, mk,
			ir.Loop("", "j", one, jt,
				ir.Loop("", "i", one, it, cellBody...),
			),
		),
		// Forward the downstream faces.
		&ir.If{Cond: dnI, Then: ir.Block(
			&ir.Send{Dest: ir.Add(myid, idir), Tag: 1, Array: "PHIIB",
				Section: ir.Sec(one, jt, one, mk)})},
		&ir.If{Cond: dnJ, Then: ir.Block(
			&ir.Send{Dest: ir.Add(myid, ir.Mul(jdir, npx)), Tag: 2, Array: "PHIJB",
				Section: ir.Sec(one, it, one, mk)})},
	)

	octBody := ir.Block(
		// Octant sweep directions from the octant number.
		ir.SetS("idir", ir.Sub(one, ir.Mul(two, ir.Mod(ir.S("oct"), two)))),
		ir.SetS("jdir", ir.Sub(one, ir.Mul(two, ir.Mod(ir.Bin{Op: ir.OpIDiv, L: ir.S("oct"), R: two}, two)))),
		// Boundary inflow for ranks with no upstream neighbour.
		ir.Loop("inflow-i", "k", one, mk, ir.Loop("", "j", one, jt,
			ir.SetA("PHIIB", ir.IX(j, k), ir.N(0.5)))),
		ir.Loop("inflow-j", "k", one, mk, ir.Loop("", "i", one, it,
			ir.SetA("PHIJB", ir.IX(i, k), ir.N(0.5)))),
		ir.Loop("kblocks", "kb", one, ir.S("nkb"), kbBody...),
	)

	// Final global flux sum (diagnostic reduction, as in the kernel).
	epilogue := ir.Block(
		ir.SetS("fsum", zero),
		ir.Loop("fluxsum", "k", one, kt,
			ir.Loop("", "j", one, jt,
				ir.Loop("", "i", one, it,
					ir.SetS("fsum", ir.Add(ir.S("fsum"), ir.At("FLUX", i, j, k)))))),
		&ir.Allreduce{Op: "sum", Vars: []string{"fsum"}},
	)

	var body []ir.Stmt
	body = append(body, prologue...)
	body = append(body, initNest...)
	body = append(body, ir.Loop("octants", "oct", one, ir.N(8), octBody...))
	body = append(body, epilogue...)

	return &ir.Program{
		Name:   "sweep3d",
		Params: []string{"IT", "JT", "KT", "MK", "NPX", "NPY"},
		Arrays: []*ir.ArrayDecl{
			{Name: "SRC", Dims: []ir.Expr{it, jt, kt}, Elem: 8},
			{Name: "FLUX", Dims: []ir.Expr{it, jt, kt}, Elem: 8},
			{Name: "PHI", Dims: []ir.Expr{it, jt, mk}, Elem: 8},
			{Name: "PHIIB", Dims: []ir.Expr{jt, mk}, Elem: 8},
			{Name: "PHIJB", Dims: []ir.Expr{it, mk}, Elem: 8},
		},
		Body: body,
	}
}
