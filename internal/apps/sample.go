package apps

import "mpisim/internal/ir"

// Pattern values for the SAMPLE kernel's PATTERN input.
const (
	// PatternWavefront selects the pipelined wavefront pattern.
	PatternWavefront = 1
	// PatternNearestNeighbour selects the 4-neighbour exchange pattern.
	PatternNearestNeighbour = 2
)

// SampleInputs builds the input map: pattern, work (abstract operations
// per iteration), msg (elements per message), iters, and the process
// grid. The communication-to-computation ratio of the paper's Figures 8
// and 9 is swept by varying work against msg.
func SampleInputs(pattern, work, msg, iters, npx, npy int) map[string]float64 {
	return map[string]float64{
		"PATTERN": float64(pattern), "WORK": float64(work), "MSG": float64(msg),
		"ITERS": float64(iters), "NPX": float64(npx), "NPY": float64(npy),
	}
}

// Sample is the synthetic communication kernel of paper §4.1/§4.2,
// "designed to evaluate the impact of the compiler-directed optimizations
// on programs with varying computation granularity and message
// communication patterns": a wavefront pattern and a nearest-neighbour
// pattern, each iterating a tunable computation block between message
// exchanges on an NPX x NPY process grid. The PATTERN input is retained
// control flow: the compiler cannot collapse the branch because both
// arms communicate.
func Sample() *ir.Program {
	msg := ir.S("MSG")
	work := ir.S("WORK")
	npx := ir.S("NPX")
	myi, myj := ir.S("myi"), ir.S("myj")
	w := ir.S("w")

	prologue := ir.Block(
		&ir.ReadInput{Var: "PATTERN"},
		&ir.ReadInput{Var: "WORK"},
		&ir.ReadInput{Var: "MSG"},
		&ir.ReadInput{Var: "ITERS"},
		&ir.ReadInput{Var: "NPX"},
		&ir.ReadInput{Var: "NPY"},
		ir.SetS("myi", ir.Mod(myid, npx)),
		ir.SetS("myj", ir.Bin{Op: ir.OpIDiv, L: myid, R: npx}),
	)

	// The computation block: WORK/2 sweeps over a small working array.
	workNest := ir.Loop("work", "w", one, ir.Bin{Op: ir.OpIDiv, L: work, R: two},
		ir.SetA("WA", ir.IX(ir.Add(ir.Mod(w, ir.N(512)), one)),
			ir.Add(ir.At("WA", ir.Add(ir.Mod(w, ir.N(512)), one)), ir.N(0.5))),
	)

	sec := ir.Sec(one, msg)

	wavefront := ir.Block(
		&ir.If{Cond: ir.GT(myi, zero), Then: ir.Block(
			&ir.Recv{Src: ir.Sub(myid, one), Tag: 1, Array: "BUF", Section: sec})},
		&ir.If{Cond: ir.GT(myj, zero), Then: ir.Block(
			&ir.Recv{Src: ir.Sub(myid, npx), Tag: 2, Array: "BUF", Section: sec})},
		workNest,
		&ir.If{Cond: ir.LT(myi, ir.Sub(npx, one)), Then: ir.Block(
			&ir.Send{Dest: ir.Add(myid, one), Tag: 1, Array: "BUF", Section: sec})},
		&ir.If{Cond: ir.LT(myj, ir.Sub(ir.S("NPY"), one)), Then: ir.Block(
			&ir.Send{Dest: ir.Add(myid, npx), Tag: 2, Array: "BUF", Section: sec})},
	)

	nearest := ir.Block(
		// Send to all four neighbours, then receive from them.
		&ir.If{Cond: ir.GT(myi, zero), Then: ir.Block(
			&ir.Send{Dest: ir.Sub(myid, one), Tag: 3, Array: "BUF", Section: sec})},
		&ir.If{Cond: ir.LT(myi, ir.Sub(npx, one)), Then: ir.Block(
			&ir.Send{Dest: ir.Add(myid, one), Tag: 4, Array: "BUF", Section: sec})},
		&ir.If{Cond: ir.GT(myj, zero), Then: ir.Block(
			&ir.Send{Dest: ir.Sub(myid, npx), Tag: 5, Array: "BUF", Section: sec})},
		&ir.If{Cond: ir.LT(myj, ir.Sub(ir.S("NPY"), one)), Then: ir.Block(
			&ir.Send{Dest: ir.Add(myid, npx), Tag: 6, Array: "BUF", Section: sec})},
		&ir.If{Cond: ir.LT(myi, ir.Sub(npx, one)), Then: ir.Block(
			&ir.Recv{Src: ir.Add(myid, one), Tag: 3, Array: "BUF", Section: sec})},
		&ir.If{Cond: ir.GT(myi, zero), Then: ir.Block(
			&ir.Recv{Src: ir.Sub(myid, one), Tag: 4, Array: "BUF", Section: sec})},
		&ir.If{Cond: ir.LT(myj, ir.Sub(ir.S("NPY"), one)), Then: ir.Block(
			&ir.Recv{Src: ir.Add(myid, npx), Tag: 5, Array: "BUF", Section: sec})},
		&ir.If{Cond: ir.GT(myj, zero), Then: ir.Block(
			&ir.Recv{Src: ir.Sub(myid, npx), Tag: 6, Array: "BUF", Section: sec})},
		workNest,
	)

	iterBody := ir.Block(
		&ir.If{Cond: ir.EQ(ir.S("PATTERN"), ir.N(PatternWavefront)),
			Then: wavefront,
			Else: nearest,
		},
	)

	var body []ir.Stmt
	body = append(body, prologue...)
	body = append(body, ir.Loop("iters", "it", one, ir.S("ITERS"), iterBody...))
	body = append(body, &ir.Barrier{})

	return &ir.Program{
		Name:   "sample",
		Params: []string{"PATTERN", "WORK", "MSG", "ITERS", "NPX", "NPY"},
		Arrays: []*ir.ArrayDecl{
			{Name: "BUF", Dims: []ir.Expr{msg}, Elem: 8},
			{Name: "WA", Dims: []ir.Expr{ir.N(512)}, Elem: 8},
		},
		Body: body,
	}
}
