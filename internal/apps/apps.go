// Package apps defines the paper's four workloads as IR programs:
//
//   - Tomcatv — the SPEC92 mesh-generation benchmark, in the (*,BLOCK)
//     HPF distribution compiled to MPI (paper §4.1): column-block
//     decomposition, per-iteration halo exchange of boundary columns,
//     residual reduction, local line solves.
//   - Sweep3D — the DOE ASCI wavefront kernel: 2D process decomposition,
//     8 octant sweeps pipelined in k-blocks, including the data-dependent
//     flux-fixup branch the paper discusses (§3.1).
//   - NAS SP — an ADI-style scalar-pentadiagonal solver on a square
//     process grid with pipelined line solves in x and y and grid sizes
//     stored in an array (the executable-scaling-function case of §3.3).
//   - SAMPLE — the synthetic communication kernel with wavefront and
//     nearest-neighbour patterns and a tunable computation/communication
//     ratio (§4.2).
//
// Every program is written once; the compiler derives the simplified and
// timer variants, exactly as dhpf does in the paper.
package apps

import (
	"fmt"
	"sort"

	"mpisim/internal/ir"
)

// Spec couples a program with an input builder for the registry used by
// the command-line tools.
type Spec struct {
	Name    string
	Build   func() *ir.Program
	Default func(ranks int) map[string]float64
	// Describe explains the input parameters.
	Describe string
}

// Registry returns all applications keyed by name.
func Registry() map[string]Spec {
	return map[string]Spec{
		"tomcatv": {
			Name:     "tomcatv",
			Build:    Tomcatv,
			Default:  func(int) map[string]float64 { return TomcatvInputs(256, 3) },
			Describe: "N (grid side), ITER (time steps)",
		},
		"sweep3d": {
			Name:  "sweep3d",
			Build: Sweep3D,
			Default: func(ranks int) map[string]float64 {
				npx, npy := ProcGrid(ranks)
				return Sweep3DInputs(4, 4, 40, 10, npx, npy)
			},
			Describe: "IT,JT,KT (per-proc grid), MK (k-block), NPX,NPY (proc grid)",
		},
		"nassp": {
			Name:  "nassp",
			Build: NASSP,
			Default: func(ranks int) map[string]float64 {
				q := SquareSide(ranks)
				return NASSPInputs(32, 2, q)
			},
			Describe: "NX (grid side), STEPS, Q (proc grid side, P=Q*Q)",
		},
		"sample": {
			Name:  "sample",
			Build: Sample,
			Default: func(ranks int) map[string]float64 {
				npx, npy := ProcGrid(ranks)
				return SampleInputs(PatternWavefront, 20000, 1000, 10, npx, npy)
			},
			Describe: "PATTERN (1=wavefront,2=nearest-neighbour), WORK, MSG, ITERS, NPX, NPY",
		},
	}
}

// Names returns the registered application names, sorted.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for n := range reg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ProcGrid factors ranks into the most square NPX x NPY grid.
func ProcGrid(ranks int) (npx, npy int) {
	npx = 1
	for f := 1; f*f <= ranks; f++ {
		if ranks%f == 0 {
			npx = f
		}
	}
	return npx, ranks / npx
}

// SquareSide returns the integer square root of ranks, panicking unless
// ranks is a perfect square (NAS SP requires square process grids).
func SquareSide(ranks int) int {
	for q := 1; q*q <= ranks; q++ {
		if q*q == ranks {
			return q
		}
	}
	panic(fmt.Sprintf("apps: NAS SP needs a square rank count, got %d", ranks))
}

// Shared IR shorthand used by the program definitions.
var (
	myid = ir.S(ir.BuiltinMyID)
	nprc = ir.S(ir.BuiltinP)
	one  = ir.N(1)
	zero = ir.N(0)
	two  = ir.N(2)
)

// and returns the 0/1 conjunction of two truth-valued expressions.
func and(a, b ir.Expr) ir.Expr { return ir.Mul(a, b) }
