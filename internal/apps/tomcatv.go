package apps

import "mpisim/internal/ir"

// TomcatvInputs builds the input map for an n x n grid and iter time
// steps. The paper validates a 2048x2048 grid on 4-64 IBM SP processors
// (Figures 3 and 13).
func TomcatvInputs(n, iter int) map[string]float64 {
	return map[string]float64{"N": float64(n), "ITER": float64(iter)}
}

// Tomcatv is the SPEC92 mesh-generation benchmark as compiled by dhpf
// from HPF with the key arrays distributed (*,BLOCK): contiguous column
// blocks in the second dimension (paper §4.1). The first dimension is
// local, so the tridiagonal line solves along i need no communication;
// each iteration exchanges one boundary column with each neighbour and
// reduces the residual maximum.
//
// Local layout: arrays are (N, b+2) where b = ceil(N/P); local columns
// 2..nloc+1 hold the rank's global columns myid*b+1 .. myid*b+nloc, and
// columns 1 and nloc+2 are ghost columns.
func Tomcatv() *ir.Program {
	n := ir.S("N")
	b := ir.S("b")
	nloc := ir.S("nloc")
	i, jl := ir.S("i"), ir.S("jl")
	dims := []ir.Expr{n, ir.Add(ir.CeilDiv(n, nprc), two)}

	// 9-point-ish residual stencil (~20 ops per point per array, close
	// to Tomcatv's per-point flop count).
	stencil := func(a string) ir.Expr {
		return ir.AddN(
			ir.At(a, ir.Sub(i, one), jl),
			ir.At(a, ir.Add(i, one), jl),
			ir.At(a, i, ir.Sub(jl, one)),
			ir.At(a, i, ir.Add(jl, one)),
			ir.Mul(ir.N(-4), ir.At(a, i, jl)),
			ir.Mul(ir.N(0.25), ir.At(a, ir.Sub(i, one), ir.Sub(jl, one))),
			ir.Mul(ir.N(0.25), ir.At(a, ir.Add(i, one), ir.Add(jl, one))),
		)
	}

	ghostSendRecv := func(arr string, tagL, tagR int) []ir.Stmt {
		return ir.Block(
			// Send first owned column left, last owned column right.
			&ir.If{Cond: ir.GT(myid, zero), Then: ir.Block(
				&ir.Send{Dest: ir.Sub(myid, one), Tag: tagL, Array: arr,
					Section: ir.Sec(one, n, two, two)})},
			&ir.If{Cond: ir.LT(myid, ir.Sub(nprc, one)), Then: ir.Block(
				&ir.Send{Dest: ir.Add(myid, one), Tag: tagR, Array: arr,
					Section: ir.Sec(one, n, ir.Add(nloc, one), ir.Add(nloc, one))})},
			// Receive ghosts: right ghost from right neighbour's tagL
			// send, left ghost from left neighbour's tagR send.
			&ir.If{Cond: ir.LT(myid, ir.Sub(nprc, one)), Then: ir.Block(
				&ir.Recv{Src: ir.Add(myid, one), Tag: tagL, Array: arr,
					Section: ir.Sec(one, n, ir.Add(nloc, two), ir.Add(nloc, two))})},
			&ir.If{Cond: ir.GT(myid, zero), Then: ir.Block(
				&ir.Recv{Src: ir.Sub(myid, one), Tag: tagR, Array: arr,
					Section: ir.Sec(one, n, one, one)})},
		)
	}

	// Interior local-column bounds: global interior is 2..N-1.
	// jlo = max(2, myid*b+1) - myid*b + 1 ; jhi = min(N-1, myid*b+nloc) - myid*b + 1
	base := ir.Mul(myid, b)
	prologue := ir.Block(
		&ir.ReadInput{Var: "N"},
		&ir.ReadInput{Var: "ITER"},
		ir.SetS("b", ir.CeilDiv(n, nprc)),
		ir.SetS("nloc", ir.MaxE(zero, ir.MinE(b, ir.Sub(n, base)))),
		ir.SetS("jlo", ir.Add(ir.Sub(ir.MaxE(two, ir.Add(base, one)), base), one)),
		ir.SetS("jhi", ir.Add(ir.Sub(ir.MinE(ir.Sub(n, one), ir.Add(base, nloc)), base), one)),
	)
	jlo, jhi := ir.S("jlo"), ir.S("jhi")

	// Mesh initialization (local).
	initNest := ir.Block(
		ir.Loop("init", "jl", two, ir.Add(nloc, one),
			ir.Loop("", "i", one, n,
				ir.SetA("X", ir.IX(i, jl), ir.Mul(i, ir.N(0.01))),
				ir.SetA("Y", ir.IX(i, jl), ir.Mul(ir.Add(jl, ir.Mul(myid, b)), ir.N(0.01))),
				ir.SetA("AA", ir.IX(i, jl), ir.N(-0.5)),
			),
		),
	)

	// Halo exchange for X and Y, then the computation nests.
	var iterBody []ir.Stmt
	iterBody = append(iterBody, ghostSendRecv("X", 10, 11)...)
	iterBody = append(iterBody, ghostSendRecv("Y", 12, 13)...)
	iterBody = append(iterBody, ir.Block(
		// Residual computation over the interior.
		ir.Loop("residual", "jl", jlo, jhi,
			ir.Loop("", "i", two, ir.Sub(n, one),
				ir.SetA("RX", ir.IX(i, jl), stencil("X")),
				ir.SetA("RY", ir.IX(i, jl), stencil("Y")),
			),
		),
		// Residual maximum.
		ir.SetS("rmax", zero),
		ir.Loop("rmax", "jl", jlo, jhi,
			ir.Loop("", "i", two, ir.Sub(n, one),
				ir.SetS("rmax", ir.MaxE(ir.S("rmax"),
					ir.MaxE(ir.Abs(ir.At("RX", i, jl)), ir.Abs(ir.At("RY", i, jl))))),
			),
		),
		&ir.Allreduce{Op: "max", Vars: []string{"rmax"}},
		// Tridiagonal solves along i (local with (*,BLOCK)): forward
		// elimination then back substitution, for both RX and RY.
		ir.Loop("forward", "jl", jlo, jhi,
			ir.Loop("", "i", two, ir.Sub(n, one),
				ir.SetA("DD", ir.IX(i, jl),
					ir.Div(one, ir.Sub(ir.N(4), ir.Mul(ir.At("AA", i, jl), ir.At("DD", ir.Sub(i, one), jl))))),
				ir.SetA("RX", ir.IX(i, jl),
					ir.Mul(ir.Add(ir.At("RX", i, jl), ir.At("RX", ir.Sub(i, one), jl)), ir.At("DD", i, jl))),
				ir.SetA("RY", ir.IX(i, jl),
					ir.Mul(ir.Add(ir.At("RY", i, jl), ir.At("RY", ir.Sub(i, one), jl)), ir.At("DD", i, jl))),
			),
		),
		ir.Loop("backward", "jl", jlo, jhi,
			ir.Loop("", "ii", two, ir.Sub(n, one),
				// i runs N-1 down to 2.
				ir.SetS("i", ir.Sub(ir.Add(n, one), ir.S("ii"))),
				ir.SetA("RX", ir.IX(i, jl),
					ir.Sub(ir.At("RX", i, jl), ir.Mul(ir.At("AA", i, jl), ir.At("RX", ir.MinE(ir.Add(i, one), n), jl)))),
				ir.SetA("RY", ir.IX(i, jl),
					ir.Sub(ir.At("RY", i, jl), ir.Mul(ir.At("AA", i, jl), ir.At("RY", ir.MinE(ir.Add(i, one), n), jl)))),
			),
		),
		// Mesh update.
		ir.Loop("update", "jl", jlo, jhi,
			ir.Loop("", "i", two, ir.Sub(n, one),
				ir.SetA("X", ir.IX(i, jl), ir.Add(ir.At("X", i, jl), ir.At("RX", i, jl))),
				ir.SetA("Y", ir.IX(i, jl), ir.Add(ir.At("Y", i, jl), ir.At("RY", i, jl))),
			),
		),
	)...)

	var body []ir.Stmt
	body = append(body, prologue...)
	body = append(body, initNest...)
	body = append(body, ir.Loop("timeloop", "iter", one, ir.S("ITER"), iterBody...))

	return &ir.Program{
		Name:   "tomcatv",
		Params: []string{"N", "ITER"},
		Arrays: []*ir.ArrayDecl{
			{Name: "X", Dims: dims, Elem: 8},
			{Name: "Y", Dims: dims, Elem: 8},
			{Name: "RX", Dims: dims, Elem: 8},
			{Name: "RY", Dims: dims, Elem: 8},
			{Name: "AA", Dims: dims, Elem: 8},
			{Name: "DD", Dims: dims, Elem: 8},
		},
		Body: body,
	}
}
