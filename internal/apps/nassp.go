package apps

import "mpisim/internal/ir"

// NASSPInputs builds the input map for an nx^3 total grid, the given
// number of ADI time steps, and a q x q process grid (P = q*q). Class A
// of the NPB 2.3 suite is nx=64, class C is nx=162 (the paper validates
// both, calibrating w_i only on class A — Figures 5, 6, 12).
func NASSPInputs(nx, steps, q int) map[string]float64 {
	return map[string]float64{"NX": float64(nx), "STEPS": float64(steps), "Q": float64(q)}
}

// NASSP is a scalar-pentadiagonal ADI solver in the style of the NAS SP
// benchmark: on a q x q process grid, every time step computes the RHS
// locally, then performs line solves in x and y as forward/backward
// pipelined sweeps across the process grid (z lines are local), updates
// the solution, and periodically reduces a residual norm.
//
// As in the real SP (paper §3.3), the per-processor cell sizes are
// computed into an array (CSIZE) that then appears in most loop bounds,
// which makes symbolic forward propagation infeasible; the compiler must
// retain the executable scaling expressions and the CSIZE computation in
// the simplified code.
func NASSP() *ir.Program {
	nx := ir.S("NX")
	q := ir.S("Q")
	i, j, k := ir.S("i"), ir.S("j"), ir.S("k")
	cx, cy, cz := ir.S("cx"), ir.S("cy"), ir.S("cz") // local cell counts
	myrow, mycol := ir.S("myrow"), ir.S("mycol")
	// Array bound: ceil(NX/Q)+1 cells per dimension suffices everywhere.
	bmax := ir.Add(ir.CeilDiv(nx, q), one)

	prologue := ir.Block(
		&ir.ReadInput{Var: "NX"},
		&ir.ReadInput{Var: "STEPS"},
		&ir.ReadInput{Var: "Q"},
		ir.SetS("myrow", ir.Bin{Op: ir.OpIDiv, L: myid, R: q}),
		ir.SetS("mycol", ir.Mod(myid, q)),
		// Balanced cell split, stored in an array (the SP idiom): cell c
		// gets floor((NX + Q - c) / Q) points.
		ir.Loop("csize", "c", one, q,
			ir.SetA("CSIZE", ir.IX(ir.S("c")),
				ir.Bin{Op: ir.OpIDiv, L: ir.AddN(nx, q, ir.Mul(ir.S("c"), ir.N(-1))), R: q})),
		ir.SetS("cx", ir.At("CSIZE", ir.Add(mycol, one))),
		ir.SetS("cy", ir.At("CSIZE", ir.Add(myrow, one))),
		ir.SetS("cz", nx),
	)

	// U initialization.
	initNest := ir.Block(
		ir.Loop("init", "k", one, cz,
			ir.Loop("", "j", one, cy,
				ir.Loop("", "i", one, cx,
					ir.SetA("U", ir.IX(i, j, k), ir.Mul(ir.AddN(i, j, k), ir.N(0.001))),
				),
			),
		),
	)

	// compute_rhs: ~26 abstract ops per cell.
	rhsNest := ir.Loop("rhs", "k", two, ir.Sub(cz, one),
		ir.Loop("", "j", one, cy,
			ir.Loop("", "i", one, cx,
				ir.SetA("RHS", ir.IX(i, j, k), ir.AddN(
					ir.Mul(ir.N(0.4), ir.At("U", i, j, ir.Sub(k, one))),
					ir.Mul(ir.N(-0.8), ir.At("U", i, j, k)),
					ir.Mul(ir.N(0.4), ir.At("U", i, j, ir.Add(k, one))),
					ir.Mul(ir.At("U", i, j, k), ir.At("U", i, j, k)),
					ir.Mul(ir.N(0.01), ir.AddN(i, j, k)),
				)),
			),
		),
	)

	// Pipelined line solve along the process-grid x direction: the face
	// is a cy x cz plane. upstreamGuard/downstreamGuard in terms of the
	// position coordinate pos and neighbour stride.
	lineSolve := func(label string, pos ir.Expr, stride ir.Expr, tag int, faceDim1 ir.Expr) []ir.Stmt {
		work := func(phase string) ir.Stmt {
			return ir.Loop(label+"-"+phase, "k", one, cz,
				ir.Loop("", "j", one, cy,
					ir.Loop("", "i", one, cx,
						ir.SetA("RHS", ir.IX(i, j, k), ir.Add(
							ir.Mul(ir.At("RHS", i, j, k), ir.N(0.98)),
							ir.Mul(ir.N(0.02), ir.At("FACE", ir.MinE(j, faceDim1), k)),
						)),
					),
				),
			)
		}
		return ir.Block(
			// Forward sweep: low position to high.
			&ir.If{Cond: ir.GT(pos, zero), Then: ir.Block(
				&ir.Recv{Src: ir.Sub(myid, stride), Tag: tag, Array: "FACE",
					Section: ir.Sec(one, faceDim1, one, cz)})},
			work("fwd"),
			&ir.If{Cond: ir.LT(pos, ir.Sub(q, one)), Then: ir.Block(
				&ir.Send{Dest: ir.Add(myid, stride), Tag: tag, Array: "FACE",
					Section: ir.Sec(one, faceDim1, one, cz)})},
			// Backward substitution: high position to low.
			&ir.If{Cond: ir.LT(pos, ir.Sub(q, one)), Then: ir.Block(
				&ir.Recv{Src: ir.Add(myid, stride), Tag: tag + 1, Array: "FACE",
					Section: ir.Sec(one, faceDim1, one, cz)})},
			work("bwd"),
			&ir.If{Cond: ir.GT(pos, zero), Then: ir.Block(
				&ir.Send{Dest: ir.Sub(myid, stride), Tag: tag + 1, Array: "FACE",
					Section: ir.Sec(one, faceDim1, one, cz)})},
		)
	}

	// z solve is local (z is not distributed).
	zSolve := ir.Loop("zsolve", "k", two, ir.Sub(cz, one),
		ir.Loop("", "j", one, cy,
			ir.Loop("", "i", one, cx,
				ir.SetA("RHS", ir.IX(i, j, k), ir.Add(
					ir.Mul(ir.At("RHS", i, j, k), ir.N(0.96)),
					ir.Mul(ir.N(0.02), ir.Add(ir.At("RHS", i, j, ir.Sub(k, one)), ir.At("RHS", i, j, ir.MinE(ir.Add(k, one), cz)))),
				)),
			),
		),
	)

	addNest := ir.Loop("add", "k", one, cz,
		ir.Loop("", "j", one, cy,
			ir.Loop("", "i", one, cx,
				ir.SetA("U", ir.IX(i, j, k), ir.Add(ir.At("U", i, j, k), ir.At("RHS", i, j, k))),
			),
		),
	)

	residual := ir.Block(
		&ir.If{Cond: ir.EQ(ir.Mod(ir.S("step"), ir.N(5)), zero), Then: ir.Block(
			ir.SetS("rnorm", zero),
			ir.Loop("rnorm", "k", one, cz,
				ir.Loop("", "j", one, cy,
					ir.Loop("", "i", one, cx,
						ir.SetS("rnorm", ir.Add(ir.S("rnorm"),
							ir.Mul(ir.At("RHS", i, j, k), ir.At("RHS", i, j, k))))))),
			&ir.Allreduce{Op: "sum", Vars: []string{"rnorm"}},
		)},
	)

	var stepBody []ir.Stmt
	stepBody = append(stepBody, rhsNest)
	stepBody = append(stepBody, lineSolve("xsolve", mycol, one, 10, cy)...)
	stepBody = append(stepBody, lineSolve("ysolve", myrow, q, 20, cx)...)
	stepBody = append(stepBody, zSolve, addNest)
	stepBody = append(stepBody, residual...)

	var body []ir.Stmt
	body = append(body, prologue...)
	body = append(body, initNest...)
	body = append(body, ir.Loop("steps", "step", one, ir.S("STEPS"), stepBody...))

	dims3 := []ir.Expr{bmax, bmax, nx}
	return &ir.Program{
		Name:   "nassp",
		Params: []string{"NX", "STEPS", "Q"},
		Arrays: []*ir.ArrayDecl{
			{Name: "U", Dims: dims3, Elem: 8},
			{Name: "RHS", Dims: dims3, Elem: 8},
			{Name: "FACE", Dims: []ir.Expr{bmax, nx}, Elem: 8},
			{Name: "CSIZE", Dims: []ir.Expr{q}, Elem: 8},
		},
		Body: body,
	}
}
