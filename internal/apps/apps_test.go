package apps

import (
	"math"
	"testing"

	"mpisim/internal/compiler"
	"mpisim/internal/interp"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
)

func TestRegistry(t *testing.T) {
	reg := Registry()
	if len(reg) != 4 {
		t.Fatalf("registry has %d apps", len(reg))
	}
	for _, name := range []string{"tomcatv", "sweep3d", "nassp", "sample"} {
		spec, ok := reg[name]
		if !ok {
			t.Fatalf("missing app %q", name)
		}
		if spec.Build == nil || spec.Default == nil {
			t.Fatalf("%s: incomplete spec", name)
		}
	}
	if names := Names(); len(names) != 4 || names[0] != "nassp" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestProcGrid(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 4: {2, 2}, 6: {2, 3}, 8: {2, 4}, 9: {3, 3}, 12: {3, 4}, 7: {1, 7}}
	for ranks, want := range cases {
		x, y := ProcGrid(ranks)
		if x != want[0] || y != want[1] {
			t.Errorf("ProcGrid(%d) = %d,%d want %v", ranks, x, y, want)
		}
		if x*y != ranks {
			t.Errorf("ProcGrid(%d) does not multiply out", ranks)
		}
	}
}

func TestSquareSide(t *testing.T) {
	if SquareSide(16) != 4 || SquareSide(1) != 1 || SquareSide(25) != 5 {
		t.Fatal("SquareSide wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-square")
		}
	}()
	SquareSide(8)
}

func TestAllProgramsValidate(t *testing.T) {
	for name, spec := range Registry() {
		if err := spec.Build().Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAllProgramsCompile(t *testing.T) {
	for name, spec := range Registry() {
		res, err := compiler.Compile(spec.Build())
		if err != nil {
			t.Errorf("%s: compile: %v", name, err)
			continue
		}
		if len(res.TaskVars) == 0 {
			t.Errorf("%s: no condensed tasks", name)
		}
		if len(res.Slice.DummyArrays) == 0 {
			t.Errorf("%s: no arrays replaced by the dummy buffer: %s", name, res.Summary())
		}
	}
}

// runModes executes the Figure-2 workflow for an app at one config and
// returns measured (detailed), DE and AM times plus the reports.
func runModes(t *testing.T, prog *ir.Program, ranks int, inputs map[string]float64,
	calRanks int, calInputs map[string]float64) (measured, de, am float64, deRep, amRep *mpi.Report) {
	t.Helper()
	m := machine.IBMSP()
	res, err := compiler.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	cal := interp.NewCalibration()
	if _, err := interp.Run(res.Timer, interp.Config{
		Ranks: calRanks, Machine: m, Comm: mpi.Detailed,
		Inputs: calInputs, Calibration: cal}); err != nil {
		t.Fatalf("timer: %v", err)
	}
	meas, err := interp.Run(prog, interp.Config{
		Ranks: ranks, Machine: m, Comm: mpi.Detailed, Inputs: inputs})
	if err != nil {
		t.Fatalf("measured: %v", err)
	}
	deRep, err = interp.Run(prog, interp.Config{
		Ranks: ranks, Machine: m, Comm: mpi.Analytic, Inputs: inputs})
	if err != nil {
		t.Fatalf("DE: %v", err)
	}
	amRep, err = interp.Run(res.Simplified, interp.Config{
		Ranks: ranks, Machine: m, Comm: mpi.Analytic, Inputs: inputs,
		TaskTimes: cal.TaskTimes()})
	if err != nil {
		t.Fatalf("AM: %v", err)
	}
	return meas.Time, deRep.Time, amRep.Time, deRep, amRep
}

func relErr(a, b float64) float64 { return math.Abs(a-b) / b }

func TestTomcatvValidation(t *testing.T) {
	inputs := TomcatvInputs(96, 2)
	meas, de, am, deRep, amRep := runModes(t, Tomcatv(), 4, inputs, 4, inputs)
	if relErr(de, meas) > 0.10 {
		t.Errorf("DE error vs measured: %.3f (DE=%g meas=%g)", relErr(de, meas), de, meas)
	}
	if relErr(am, meas) > 0.17 {
		t.Errorf("AM error vs measured: %.3f (AM=%g meas=%g)", relErr(am, meas), am, meas)
	}
	// Memory reduction: AM keeps no big arrays.
	if deRep.TotalPeakBytes < 10*amRep.TotalPeakBytes {
		t.Errorf("memory reduction too small: DE=%d AM=%d",
			deRep.TotalPeakBytes, amRep.TotalPeakBytes)
	}
}

func TestTomcatvScalesAcrossRanks(t *testing.T) {
	// Calibrate once at P=4, predict at P=2 and P=8.
	calInputs := TomcatvInputs(96, 2)
	for _, ranks := range []int{2, 8} {
		meas, _, am, _, _ := runModes(t, Tomcatv(), ranks, calInputs, 4, calInputs)
		if e := relErr(am, meas); e > 0.17 {
			t.Errorf("P=%d: AM error %.3f > 17%%", ranks, e)
		}
	}
}

func TestSweep3DValidation(t *testing.T) {
	inputs := Sweep3DInputs(4, 4, 32, 8, 2, 2)
	meas, de, am, _, _ := runModes(t, Sweep3D(), 4, inputs, 4, inputs)
	if relErr(de, meas) > 0.10 {
		t.Errorf("DE error vs measured: %.3f", relErr(de, meas))
	}
	if relErr(am, meas) > 0.17 {
		t.Errorf("AM error vs measured: %.3f (AM=%g meas=%g)", relErr(am, meas), am, meas)
	}
}

func TestSweep3DWavefrontPipelines(t *testing.T) {
	// With more k-blocks the pipeline has finer stages: same total work,
	// different timing; both must complete without deadlock on a
	// non-square grid. Per-block compute must exceed the message latency
	// for pipelining to pay off, so use a compute-heavy size.
	base := Sweep3DInputs(12, 12, 32, 32, 2, 3) // one block: no pipelining
	fine := Sweep3DInputs(12, 12, 32, 8, 2, 3)  // four blocks
	m := machine.IBMSP()
	run := func(in map[string]float64) float64 {
		rep, err := interp.Run(Sweep3D(), interp.Config{
			Ranks: 6, Machine: m, Comm: mpi.Detailed, Inputs: in})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Time
	}
	coarse := run(base)
	pipelined := run(fine)
	// Finer pipelining reduces wavefront fill time for this geometry.
	if pipelined >= coarse {
		t.Errorf("pipelining did not help: fine=%g coarse=%g", pipelined, coarse)
	}
}

func TestNASSPValidation(t *testing.T) {
	inputs := NASSPInputs(24, 2, 2)
	meas, de, am, _, _ := runModes(t, NASSP(), 4, inputs, 4, inputs)
	if relErr(de, meas) > 0.10 {
		t.Errorf("DE error vs measured: %.3f", relErr(de, meas))
	}
	if relErr(am, meas) > 0.17 {
		t.Errorf("AM error vs measured: %.3f (AM=%g meas=%g)", relErr(am, meas), am, meas)
	}
}

func TestNASSPClassScaling(t *testing.T) {
	// Calibrate on the small class, predict the larger class (the
	// paper's class A -> class C experiment): error must stay bounded.
	// As in the paper, both classes sit in the same (out-of-cache) memory
	// regime — that is why the authors saw only ~4% error despite not
	// modeling cache working sets (§4.2).
	small := NASSPInputs(32, 2, 2)
	large := NASSPInputs(48, 2, 2)
	meas, _, am, _, _ := runModes(t, NASSP(), 4, large, 4, small)
	if e := relErr(am, meas); e > 0.17 {
		t.Errorf("class-scaled AM error %.3f > 17%% (AM=%g meas=%g)", e, am, meas)
	}
	// The larger class must take substantially longer ((48/32)^3 = 3.4x).
	measSmall, _, _, _, _ := runModes(t, NASSP(), 4, small, 4, small)
	if meas < 3*measSmall {
		t.Errorf("class scaling too small: %g vs %g", meas, measSmall)
	}
}

func TestNASSPKeepsCellArray(t *testing.T) {
	res, err := compiler.Compile(NASSP())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Slice.KeptArrays["CSIZE"] {
		t.Fatalf("CSIZE not kept:\n%s", res.Summary())
	}
	for _, big := range []string{"U", "RHS"} {
		if res.Slice.KeptArrays[big] {
			t.Errorf("%s wrongly kept", big)
		}
	}
}

func TestSampleBothPatterns(t *testing.T) {
	for _, pat := range []int{PatternWavefront, PatternNearestNeighbour} {
		inputs := SampleInputs(pat, 5000, 200, 4, 2, 2)
		meas, _, am, _, _ := runModes(t, Sample(), 4, inputs, 4, inputs)
		if meas <= 0 {
			t.Fatalf("pattern %d: no time", pat)
		}
		if e := relErr(am, meas); e > 0.17 {
			t.Errorf("pattern %d: AM error %.3f", pat, e)
		}
	}
}

func TestSampleErrorGrowsWithCommRatio(t *testing.T) {
	// Figure 9's effect: AM error increases as communication dominates.
	m := machine.Origin2000()
	errAt := func(work int) float64 {
		inputs := SampleInputs(PatternNearestNeighbour, work, 500, 6, 2, 2)
		res, err := compiler.Compile(Sample())
		if err != nil {
			t.Fatal(err)
		}
		cal := interp.NewCalibration()
		if _, err := interp.Run(res.Timer, interp.Config{
			Ranks: 4, Machine: m, Comm: mpi.Detailed, Inputs: inputs, Calibration: cal}); err != nil {
			t.Fatal(err)
		}
		meas, err := interp.Run(Sample(), interp.Config{
			Ranks: 4, Machine: m, Comm: mpi.Detailed, Inputs: inputs})
		if err != nil {
			t.Fatal(err)
		}
		am, err := interp.Run(res.Simplified, interp.Config{
			Ranks: 4, Machine: m, Comm: mpi.Analytic, Inputs: inputs,
			TaskTimes: cal.TaskTimes()})
		if err != nil {
			t.Fatal(err)
		}
		return relErr(am.Time, meas.Time)
	}
	commHeavy := errAt(100)
	compHeavy := errAt(200000)
	if compHeavy > 0.05 {
		t.Errorf("computation-dominated error %.3f should be tiny", compHeavy)
	}
	if commHeavy < compHeavy {
		t.Errorf("comm-heavy error (%.4f) not larger than comp-heavy (%.4f)", commHeavy, compHeavy)
	}
}

func TestDefaultInputsRun(t *testing.T) {
	m := machine.IBMSP()
	for name, spec := range Registry() {
		ranks := 4
		inputs := spec.Default(ranks)
		prog := spec.Build()
		if name == "tomcatv" {
			inputs = TomcatvInputs(64, 1) // keep the test fast
		}
		rep, err := interp.Run(prog, interp.Config{
			Ranks: ranks, Machine: m, Comm: mpi.Analytic, Inputs: inputs})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if rep.Time <= 0 {
			t.Errorf("%s: zero simulated time", name)
		}
	}
}

func TestAppsEngineEquivalence(t *testing.T) {
	// Simulated results must be identical across host worker counts for
	// a communication-heavy app (Sweep3D exercises the wavefront).
	m := machine.IBMSP()
	inputs := Sweep3DInputs(3, 3, 16, 4, 2, 2)
	base, err := interp.Run(Sweep3D(), interp.Config{
		Ranks: 4, Machine: m, Comm: mpi.Detailed, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	for _, hw := range []int{2, 4} {
		rep, err := interp.Run(Sweep3D(), interp.Config{
			Ranks: 4, Machine: m, Comm: mpi.Detailed, Inputs: inputs,
			HostWorkers: hw, RealParallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Time != base.Time {
			t.Fatalf("hostWorkers=%d: %g != %g", hw, rep.Time, base.Time)
		}
	}
}

// TestProgramsRoundTripThroughText exercises the IR text format: every
// benchmark, and every compiler-emitted variant, prints to pseudocode
// that parses back to an identical program.
func TestProgramsRoundTripThroughText(t *testing.T) {
	for name, spec := range Registry() {
		progs := []*ir.Program{spec.Build()}
		res, err := compiler.Compile(spec.Build())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		progs = append(progs, res.Simplified, res.Timer)
		for _, p := range progs {
			text := p.String()
			back, err := ir.Parse(text)
			if err != nil {
				t.Errorf("%s/%s: parse: %v", name, p.Name, err)
				continue
			}
			if back.String() != text {
				t.Errorf("%s/%s: round trip changed the program", name, p.Name)
			}
		}
	}
}

// TestParsedProgramRunsIdentically: a benchmark serialized to text and
// parsed back must simulate to the identical predicted time.
func TestParsedProgramRunsIdentically(t *testing.T) {
	orig := Sample()
	back, err := ir.Parse(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	inputs := SampleInputs(PatternWavefront, 2000, 100, 3, 2, 2)
	m := machine.IBMSP()
	a, err := interp.Run(orig, interp.Config{Ranks: 4, Machine: m, Comm: mpi.Detailed, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	b, err := interp.Run(back, interp.Config{Ranks: 4, Machine: m, Comm: mpi.Detailed, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Fatalf("parsed program simulates differently: %g vs %g", b.Time, a.Time)
	}
}
