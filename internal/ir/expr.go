// Package ir defines the program representation that stands in for the
// Fortran/HPF + MPI source programs of the paper. The dhpf analyses the
// paper relies on — static task graph synthesis, condensation, program
// slicing, symbolic scaling functions — operate on compiler IR rather
// than on surface syntax, so this package carries exactly the information
// those analyses consume: declarations with symbolic dimensions,
// structured control flow, explicit message-passing statements, and full
// definition/use information.
//
// Programs are per-rank SPMD: every rank executes the same body with the
// built-in scalars P (number of ranks) and myid (own rank) bound, exactly
// like the example MPI code of the paper's Figure 1.
package ir

import (
	"fmt"
	"math"
	"strings"

	"mpisim/internal/symexpr"
)

// Op re-exports the symbolic operator set; the IR and the symbolic
// algebra share operator semantics.
type Op = symexpr.Op

// Re-exported operators for readability in program definitions.
const (
	OpAdd     = symexpr.OpAdd
	OpSub     = symexpr.OpSub
	OpMul     = symexpr.OpMul
	OpDiv     = symexpr.OpDiv
	OpIDiv    = symexpr.OpIDiv
	OpCeilDiv = symexpr.OpCeilDiv
	OpMod     = symexpr.OpMod
	OpMin     = symexpr.OpMin
	OpMax     = symexpr.OpMax
	OpLT      = symexpr.OpLT
	OpLE      = symexpr.OpLE
	OpGT      = symexpr.OpGT
	OpGE      = symexpr.OpGE
	OpEQ      = symexpr.OpEQ
	OpNE      = symexpr.OpNE
)

// Expr is a runtime expression: scalar arithmetic plus array element
// references and bounded summations.
type Expr interface {
	exprNode()
	String() string
}

// Num is a numeric literal.
type Num struct{ Value float64 }

func (Num) exprNode() {}

// String implements Expr.
func (n Num) String() string {
	if n.Value == math.Trunc(n.Value) && math.Abs(n.Value) < 1e15 {
		return fmt.Sprintf("%d", int64(n.Value))
	}
	return fmt.Sprintf("%g", n.Value)
}

// Scalar references a scalar variable (program input, induction variable,
// computed scalar, or a w_i task-time parameter).
type Scalar struct{ Name string }

func (Scalar) exprNode() {}

// String implements Expr.
func (s Scalar) String() string { return s.Name }

// Idx references an array element: Array[Index0][Index1]... Indexing is
// 1-based in each dimension, following the Fortran heritage of the
// benchmarks.
type Idx struct {
	Array string
	Index []Expr
}

func (Idx) exprNode() {}

// String implements Expr.
func (x Idx) String() string {
	parts := make([]string, len(x.Index))
	for i, e := range x.Index {
		parts[i] = e.String()
	}
	return fmt.Sprintf("%s(%s)", x.Array, strings.Join(parts, ", "))
}

// Bin applies a binary operator.
type Bin struct {
	Op   Op
	L, R Expr
}

func (Bin) exprNode() {}

// String implements Expr.
func (b Bin) String() string {
	switch b.Op {
	case OpMin, OpMax, OpCeilDiv:
		return fmt.Sprintf("%s(%s, %s)", b.Op, b.L, b.R)
	default:
		return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
	}
}

// Call applies a unary intrinsic: ceil, floor, abs, sqrt, log2, exp, sin.
type Call struct {
	Name string
	Arg  Expr
}

func (Call) exprNode() {}

// String implements Expr.
func (c Call) String() string { return fmt.Sprintf("%s(%s)", c.Name, c.Arg) }

// Intrinsics maps intrinsic names to implementations.
var Intrinsics = map[string]func(float64) float64{
	"ceil":  math.Ceil,
	"floor": math.Floor,
	"abs":   math.Abs,
	"sqrt":  math.Sqrt,
	"log2":  math.Log2,
	"exp":   math.Exp,
	"sin":   math.Sin,
	"cos":   math.Cos,
}

// SumE is a bounded summation sum_{Index=Lo..Hi} Body. It appears in
// compiler-synthesized scaling functions (triangular iteration spaces)
// and is simplified to closed form when the body is index-independent.
type SumE struct {
	Index  string
	Lo, Hi Expr
	Body   Expr
}

func (SumE) exprNode() {}

// String implements Expr.
func (s SumE) String() string {
	return fmt.Sprintf("sum(%s, %s, %s, %s)", s.Index, s.Lo, s.Hi, s.Body)
}

// Convenience constructors, used heavily by the benchmark definitions.

// N returns a numeric literal.
func N(v float64) Num { return Num{v} }

// S returns a scalar reference.
func S(name string) Scalar { return Scalar{name} }

// At returns an array element reference.
func At(array string, idx ...Expr) Idx { return Idx{array, idx} }

// Add returns l+r.
func Add(l, r Expr) Expr { return Bin{OpAdd, l, r} }

// AddN sums all terms left to right (at least one).
func AddN(terms ...Expr) Expr {
	e := terms[0]
	for _, t := range terms[1:] {
		e = Add(e, t)
	}
	return e
}

// Sub returns l-r.
func Sub(l, r Expr) Expr { return Bin{OpSub, l, r} }

// Mul returns l*r.
func Mul(l, r Expr) Expr { return Bin{OpMul, l, r} }

// MulN multiplies all factors left to right (at least one).
func MulN(factors ...Expr) Expr {
	e := factors[0]
	for _, f := range factors[1:] {
		e = Mul(e, f)
	}
	return e
}

// Div returns l/r.
func Div(l, r Expr) Expr { return Bin{OpDiv, l, r} }

// CeilDiv returns ceil(l/r).
func CeilDiv(l, r Expr) Expr { return Bin{OpCeilDiv, l, r} }

// Mod returns l mod r (Euclidean).
func Mod(l, r Expr) Expr { return Bin{OpMod, l, r} }

// MinE returns min(l,r).
func MinE(l, r Expr) Expr { return Bin{OpMin, l, r} }

// MaxE returns max(l,r).
func MaxE(l, r Expr) Expr { return Bin{OpMax, l, r} }

// LT returns the 0/1 truth value of l<r.
func LT(l, r Expr) Expr { return Bin{OpLT, l, r} }

// LE returns the 0/1 truth value of l<=r.
func LE(l, r Expr) Expr { return Bin{OpLE, l, r} }

// GT returns the 0/1 truth value of l>r.
func GT(l, r Expr) Expr { return Bin{OpGT, l, r} }

// GE returns the 0/1 truth value of l>=r.
func GE(l, r Expr) Expr { return Bin{OpGE, l, r} }

// EQ returns the 0/1 truth value of l==r.
func EQ(l, r Expr) Expr { return Bin{OpEQ, l, r} }

// NE returns the 0/1 truth value of l!=r.
func NE(l, r Expr) Expr { return Bin{OpNE, l, r} }

// Sqrt returns sqrt(e).
func Sqrt(e Expr) Expr { return Call{"sqrt", e} }

// Abs returns abs(e).
func Abs(e Expr) Expr { return Call{"abs", e} }

// OpCount returns the abstract operation count charged for one
// evaluation of e: the unit in which machine.Model.OpTime is expressed.
// Array references cost an extra unit (address computation + load).
func OpCount(e Expr) float64 {
	switch x := e.(type) {
	case Num, Scalar:
		return 0
	case Idx:
		c := 1.0
		for _, i := range x.Index {
			c += OpCount(i)
		}
		return c
	case Bin:
		return 1 + OpCount(x.L) + OpCount(x.R)
	case Call:
		return 2 + OpCount(x.Arg)
	case SumE:
		// Charged dynamically when evaluated; static cost is the bounds.
		return 1 + OpCount(x.Lo) + OpCount(x.Hi)
	}
	return 0
}

// ScalarsIn adds every scalar name referenced by e to set, and every
// array name to arrays (either may be nil).
func ScalarsIn(e Expr, set map[string]bool, arrays map[string]bool) {
	switch x := e.(type) {
	case Num:
	case Scalar:
		if set != nil {
			set[x.Name] = true
		}
	case Idx:
		if arrays != nil {
			arrays[x.Array] = true
		}
		for _, i := range x.Index {
			ScalarsIn(i, set, arrays)
		}
	case Bin:
		ScalarsIn(x.L, set, arrays)
		ScalarsIn(x.R, set, arrays)
	case Call:
		ScalarsIn(x.Arg, set, arrays)
	case SumE:
		ScalarsIn(x.Lo, set, arrays)
		ScalarsIn(x.Hi, set, arrays)
		inner := map[string]bool{}
		ScalarsIn(x.Body, inner, arrays)
		delete(inner, x.Index)
		if set != nil {
			for n := range inner {
				set[n] = true
			}
		}
	}
}

// HasArrayRef reports whether e references any array element.
func HasArrayRef(e Expr) bool {
	arrays := map[string]bool{}
	ScalarsIn(e, nil, arrays)
	return len(arrays) > 0
}

// ToSym converts a pure-scalar expression to the symbolic algebra. It
// fails if the expression references arrays (the SP case of paper §3.3,
// where symbolic propagation is infeasible and the executable expression
// is retained instead).
func ToSym(e Expr) (symexpr.Expr, error) {
	switch x := e.(type) {
	case Num:
		return symexpr.C(x.Value), nil
	case Scalar:
		return symexpr.V(x.Name), nil
	case Idx:
		return nil, fmt.Errorf("ir: array reference %s has no symbolic form", x)
	case Bin:
		l, err := ToSym(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ToSym(x.R)
		if err != nil {
			return nil, err
		}
		return symexpr.Binary{Op: x.Op, L: l, R: r}, nil
	case Call:
		a, err := ToSym(x.Arg)
		if err != nil {
			return nil, err
		}
		return symexpr.Func{Name: x.Name, Arg: a}, nil
	case SumE:
		lo, err := ToSym(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := ToSym(x.Hi)
		if err != nil {
			return nil, err
		}
		b, err := ToSym(x.Body)
		if err != nil {
			return nil, err
		}
		return symexpr.Sum{Index: x.Index, Lo: lo, Hi: hi, Body: b}, nil
	}
	return nil, fmt.Errorf("ir: unknown expression %T", e)
}
