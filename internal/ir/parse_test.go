package ir

import "testing"

func TestParseExprBasics(t *testing.T) {
	cases := []string{
		"3",
		"2.5",
		"x",
		"(a + b)",
		"(a - (b * c))",
		"min(a, b)",
		"max(2, ((myid * b) + 1))",
		"ceildiv(N, P)",
		"sqrt(x)",
		"abs((x - y))",
		"A(i, j)",
		"A((i + 1), (j - 1))",
		"sum(i, 1, N, (i * w_1))",
		"(x % 4)",
		"(x // 4)",
		"(myid > 0)",
		"(a <= b)",
		"(a != b)",
		"-3",
		"1e-06",
	}
	for _, src := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", src, err)
			continue
		}
		// Round trip: re-parsing the printed form yields the same print.
		back, err := ParseExpr(e.String())
		if err != nil {
			t.Errorf("re-parse of %q (%q): %v", src, e.String(), err)
			continue
		}
		if back.String() != e.String() {
			t.Errorf("round trip %q -> %q -> %q", src, e.String(), back.String())
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	bad := []string{
		"", "(", "a +", "min(1)", "min(1,2,3)", "sqrt(1,2)",
		"sum(1,2,3,4)", "sum(i,1,2)", "a @ b", "1..2",
	}
	for _, src := range bad {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q): expected error", src)
		}
	}
}

func TestMustParseExprPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParseExpr("(")
}

// roundTrip asserts print -> parse -> print is the identity.
func roundTrip(t *testing.T, p *Program) {
	t.Helper()
	text := p.String()
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse failed: %v\n%s", err, text)
	}
	if got := back.String(); got != text {
		t.Fatalf("round trip changed program:\n--- original ---\n%s\n--- reparsed ---\n%s", text, got)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("reparsed program invalid: %v", err)
	}
}

func TestParseProgramRoundTripFigure1(t *testing.T) {
	roundTrip(t, figure1Program())
}

func TestParseProgramAllStatementKinds(t *testing.T) {
	p := &Program{
		Name:   "kinds",
		Params: []string{"N", "STEPS"},
		Arrays: []*ArrayDecl{
			{Name: "A", Dims: []Expr{S("N"), Add(CeilDiv(S("N"), S(BuiltinP)), N(2))}, Elem: 8},
			{Name: "B", Dims: []Expr{N(64)}, Elem: 8},
		},
		Body: Block(
			&ReadInput{Var: "N"},
			&ReadInput{Var: "STEPS"},
			SetS("b", CeilDiv(S("N"), S(BuiltinP))),
			SetA("B", IX(N(1)), N(0)),
			ir2If(),
			Loop("outer", "t", N(1), S("STEPS"),
				Loop("", "i", N(2), Sub(S("N"), N(1)),
					SetA("A", IX(S("i"), N(1)),
						Mul(Add(At("A", S("i"), N(1)), At("A", Sub(S("i"), N(1)), N(1))), N(0.5))),
				),
				&Allreduce{Op: "max", Vars: []string{"rmax", "rmin"}},
			),
			&Bcast{Root: N(0), Vars: []string{"v"}},
			&Barrier{},
			&ReadTaskTimes{Names: []string{"w_1", "w_2"}},
			&Delay{Seconds: Mul(S("w_1"), S("b")), Task: "w_1"},
			&Timed{ID: "w_2", Units: Mul(S("b"), N(3)), Body: Block(
				SetS("x", N(1)),
			)},
		),
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, p)
}

// ir2If builds nested guarded communication for the round-trip test.
func ir2If() Stmt {
	myid := S(BuiltinMyID)
	return &If{
		Cond: GT(myid, N(0)),
		Then: Block(
			&Send{Dest: Sub(myid, N(1)), Tag: 3, Array: "B",
				Section: Sec(N(1), N(32))},
		),
		Else: Block(
			&If{Cond: LT(myid, Sub(S(BuiltinP), N(1))), Then: Block(
				&Recv{Src: Add(myid, N(1)), Tag: 3, Array: "B",
					Section: Sec(N(33), N(64))},
			)},
		),
	}
}

func TestParseErrorsProgram(t *testing.T) {
	bad := []string{
		"",                                // no program header
		"do i = 1, 2",                     // header alone
		"program p\nif (x) then\nend",     // unterminated if
		"program p\ndo i = 1, 2\nend",     // unterminated do
		"program p\nFROB x\nend",          // unknown statement
		"program p\nSEND A(1:2) tag\nend", // malformed comm
		"program p\ncall start_timer(\"a\")\ncall stop_timer(\"b\", units=1)\nend", // id mismatch
		"program p\nALLREDUCE[sum] x\nend",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseIgnoresIndentationAndBlankLines(t *testing.T) {
	src := `
program tiny

      read(*, N)
   x = (N + 1)
end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "tiny" || len(p.Body) != 2 {
		t.Fatalf("parsed %q with %d statements", p.Name, len(p.Body))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("not a program")
}
