package ir

import "strings"

// Statement location support for diagnostics: the IR carries no surface
// source positions, so analysis tools anchor their findings to the
// canonical pretty-printed listing (Program.String). StmtLines assigns
// every statement the 1-based line number of its header line in that
// listing; Parse(p.String()) preserves program structure, so the numbers
// are stable across a print→parse round trip.

// StmtLines returns a map from each statement in the program body to the
// 1-based line of its header in p.String(). The accounting mirrors the
// pretty-printer exactly: line 1 is the "program" header, followed by one
// line per input parameter and one per array declaration, then the body.
func (p *Program) StmtLines() map[Stmt]int {
	lines := map[Stmt]int{}
	// "program NAME" + "! input ..." per param + one line per array decl.
	line := 1 + len(p.Params) + len(p.Arrays)
	lineBlock(p.Body, &line, lines)
	return lines
}

// lineBlock advances *line over body exactly as writeBlock renders it,
// recording each statement's header line.
func lineBlock(body []Stmt, line *int, out map[Stmt]int) {
	for _, s := range body {
		*line++
		out[s] = *line
		switch x := s.(type) {
		case *For:
			lineBlock(x.Body, line, out)
			*line++ // enddo
		case *If:
			lineBlock(x.Then, line, out)
			if len(x.Else) > 0 {
				*line++ // else
				lineBlock(x.Else, line, out)
			}
			*line++ // endif
		case *Timed:
			lineBlock(x.Body, line, out)
			*line++ // stop_timer
		}
	}
}

// StmtHead renders the first (header) line of a statement: the full text
// for simple statements, the "do ..."/"if (...) then" line for control
// statements. Used to label diagnostics.
func StmtHead(s Stmt) string {
	switch x := s.(type) {
	case *For:
		label := ""
		if x.Label != "" {
			label = " ! " + x.Label
		}
		return "do " + x.Var + " = " + x.Lo.String() + ", " + x.Hi.String() + label
	case *If:
		return "if (" + x.Cond.String() + ") then"
	case *Timed:
		return "call start_timer(\"" + x.ID + "\")"
	default:
		var sb strings.Builder
		s.write(&sb, 0)
		return strings.TrimSuffix(sb.String(), "\n")
	}
}
