package ir

import (
	"strings"
	"testing"

	"mpisim/internal/symexpr"
)

// figure1Program builds the paper's Figure 1(a) example MPI code: a shift
// communication followed by a computational loop nest.
func figure1Program() *Program {
	b := S("b")
	myid := S(BuiltinMyID)
	return &Program{
		Name:   "figure1",
		Params: []string{"N"},
		Arrays: []*ArrayDecl{
			{Name: "A", Dims: []Expr{S("N"), Add(N(1), CeilDiv(S("N"), S(BuiltinP)))}, Elem: 8},
			{Name: "D", Dims: []Expr{S("N"), Add(N(1), CeilDiv(S("N"), S(BuiltinP)))}, Elem: 8},
		},
		Body: Block(
			&ReadInput{Var: "N"},
			SetS("b", CeilDiv(S("N"), S(BuiltinP))),
			&If{
				Cond: GT(myid, N(0)),
				Then: Block(&Send{
					Dest: Sub(myid, N(1)), Tag: 1, Array: "D",
					Section: Sec(N(2), Sub(S("N"), N(1)), N(1), N(1)),
				}),
			},
			&If{
				Cond: LT(myid, Sub(S(BuiltinP), N(1))),
				Then: Block(&Recv{
					Src: Add(myid, N(1)), Tag: 1, Array: "D",
					Section: Sec(N(2), Sub(S("N"), N(1)), Add(b, N(1)), Add(b, N(1))),
				}),
			},
			Loop("compute", "j", MaxE(N(2), N(1)), MinE(S("N"), b),
				Loop("", "i", N(2), Sub(S("N"), N(1)),
					SetA("A", IX(S("i"), S("j")),
						Mul(Add(At("D", S("i"), S("j")), At("D", S("i"), Sub(S("j"), N(1)))), N(0.5))),
				),
			),
		),
	}
}

func TestFigure1Validates(t *testing.T) {
	p := figure1Program()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestProgramString(t *testing.T) {
	out := figure1Program().String()
	for _, want := range []string{
		"program figure1", "double precision A", "read(*, N)",
		"do j", "SEND D(", "RECV D(", "enddo", "end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("program listing missing %q:\n%s", want, out)
		}
	}
}

func TestArrayLookup(t *testing.T) {
	p := figure1Program()
	if p.Array("A") == nil || p.Array("D") == nil {
		t.Fatal("declared arrays not found")
	}
	if p.Array("Z") != nil {
		t.Fatal("undeclared array found")
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{N(3), "3"},
		{N(2.5), "2.5"},
		{S("x"), "x"},
		{At("A", S("i"), N(1)), "A(i, 1)"},
		{Add(S("a"), S("b")), "(a + b)"},
		{MinE(S("a"), S("b")), "min(a, b)"},
		{CeilDiv(S("N"), S("P")), "ceildiv(N, P)"},
		{Sqrt(S("x")), "sqrt(x)"},
		{SumE{"i", N(1), S("N"), S("i")}, "sum(i, 1, N, i)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestOpCount(t *testing.T) {
	if OpCount(N(1)) != 0 || OpCount(S("x")) != 0 {
		t.Fatal("leaves must cost 0")
	}
	if OpCount(Add(S("x"), N(1))) != 1 {
		t.Fatal("binary op must cost 1")
	}
	// Mul(1) + Add(1) + D(i,j)=1 + D(i,j-1)=1+Sub(1) = 5.
	e := Mul(Add(At("D", S("i"), S("j")), At("D", S("i"), Sub(S("j"), N(1)))), N(0.5))
	if got := OpCount(e); got != 5 {
		t.Fatalf("OpCount = %v, want 5", got)
	}
}

func TestScalarsInAndArrays(t *testing.T) {
	e := Add(At("A", S("i"), S("j")), Mul(S("x"), SumE{"k", N(1), S("n"), At("B", S("k"))}))
	scalars := map[string]bool{}
	arrays := map[string]bool{}
	ScalarsIn(e, scalars, arrays)
	for _, want := range []string{"i", "j", "x", "n"} {
		if !scalars[want] {
			t.Errorf("missing scalar %q", want)
		}
	}
	if scalars["k"] {
		t.Error("bound index k leaked")
	}
	if !arrays["A"] || !arrays["B"] {
		t.Errorf("arrays = %v", arrays)
	}
	if !HasArrayRef(e) {
		t.Error("HasArrayRef = false")
	}
	if HasArrayRef(Add(S("x"), N(1))) {
		t.Error("HasArrayRef on pure-scalar expr")
	}
}

func TestToSym(t *testing.T) {
	e := Mul(Sub(S("N"), N(2)), Sub(MinE(S("N"), Add(Mul(S("myid"), S("b")), S("b"))),
		MaxE(N(2), Add(Mul(S("myid"), S("b")), N(1)))))
	se, err := ToSym(e)
	if err != nil {
		t.Fatalf("ToSym: %v", err)
	}
	env := symexpr.Env{"N": 100, "myid": 1, "b": 25}
	got := symexpr.MustEval(se, env)
	// (100-2) * (min(100, 50) - max(2, 26)) = 98 * 24
	if got != 98*24 {
		t.Fatalf("ToSym eval = %v, want %v", got, 98*24)
	}
	if _, err := ToSym(At("A", N(1))); err == nil {
		t.Fatal("expected error for array reference")
	}
	if _, err := ToSym(SumE{"i", N(1), S("n"), S("i")}); err != nil {
		t.Fatalf("sum should convert: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
	}{
		{"dup array", &Program{Arrays: []*ArrayDecl{
			{Name: "A", Dims: []Expr{N(2)}, Elem: 8}, {Name: "A", Dims: []Expr{N(2)}, Elem: 8}}}},
		{"no dims", &Program{Arrays: []*ArrayDecl{{Name: "A", Elem: 8}}}},
		{"bad elem", &Program{Arrays: []*ArrayDecl{{Name: "A", Dims: []Expr{N(2)}}}}},
		{"undeclared array", &Program{Body: Block(SetS("x", At("Z", N(1))))}},
		{"wrong subscript count", &Program{
			Arrays: []*ArrayDecl{{Name: "A", Dims: []Expr{N(2), N(2)}, Elem: 8}},
			Body:   Block(SetS("x", At("A", N(1))))}},
		{"bad intrinsic", &Program{Body: Block(SetS("x", Call{"tanhh", N(1)}))}},
		{"empty loop var", &Program{Body: Block(&For{Lo: N(1), Hi: N(2)})}},
		{"bad allreduce op", &Program{Body: Block(&Allreduce{Op: "prod", Vars: []string{"x"}})}},
		{"empty allreduce", &Program{Body: Block(&Allreduce{Op: "sum"})}},
		{"empty bcast", &Program{Body: Block(&Bcast{Root: N(0)})}},
		{"bad section", &Program{
			Arrays: []*ArrayDecl{{Name: "A", Dims: []Expr{N(2), N(2)}, Elem: 8}},
			Body:   Block(&Send{Dest: N(0), Array: "A", Section: Sec(N(1), N(2))})}},
		{"comm undeclared array", &Program{
			Body: Block(&Send{Dest: N(0), Array: "Q", Section: Sec(N(1), N(2))})}},
		{"array dim uses array", &Program{Arrays: []*ArrayDecl{
			{Name: "A", Dims: []Expr{N(4)}, Elem: 8},
			{Name: "B", Dims: []Expr{At("A", N(1))}, Elem: 8}}}},
		{"assign empty name", &Program{Body: Block(&Assign{RHS: N(1)})}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestStmtDefUse(t *testing.T) {
	// scalar assign
	du := StmtDefUse(SetS("x", Add(S("a"), At("A", S("i")))))
	if !du.Defs["x"] || !du.Uses["a"] || !du.Uses["A"] || !du.Uses["i"] {
		t.Fatalf("assign defuse wrong: %+v", du)
	}
	if du.Uses["x"] {
		t.Fatal("scalar assign must not use its target")
	}
	// array element assign: def+use of the array
	du = StmtDefUse(SetA("A", IX(S("i")), S("v")))
	if !du.Defs["A"] || !du.Uses["A"] || !du.Uses["i"] || !du.Uses["v"] {
		t.Fatalf("array assign defuse wrong: %+v", du)
	}
	// for header
	du = StmtDefUse(&For{Var: "i", Lo: S("lo"), Hi: S("hi")})
	if !du.Defs["i"] || !du.Uses["lo"] || !du.Uses["hi"] {
		t.Fatalf("for defuse wrong: %+v", du)
	}
	// send
	du = StmtDefUse(&Send{Dest: Sub(S("myid"), N(1)), Tag: 1, Array: "D",
		Section: Sec(N(2), S("N"), S("c"), S("c"))})
	if !du.Uses["myid"] || !du.Uses["D"] || !du.Uses["N"] || !du.Uses["c"] {
		t.Fatalf("send defuse wrong: %+v", du)
	}
	// recv: def+use of array
	du = StmtDefUse(&Recv{Src: N(0), Tag: 1, Array: "D", Section: Sec(N(1), N(2))})
	if !du.Defs["D"] || !du.Uses["D"] {
		t.Fatalf("recv defuse wrong: %+v", du)
	}
	// allreduce
	du = StmtDefUse(&Allreduce{Op: "sum", Vars: []string{"r"}})
	if !du.Defs["r"] || !du.Uses["r"] {
		t.Fatalf("allreduce defuse wrong: %+v", du)
	}
	// read input
	du = StmtDefUse(&ReadInput{Var: "N"})
	if !du.Defs["N"] {
		t.Fatalf("readinput defuse wrong: %+v", du)
	}
	// read task times
	du = StmtDefUse(&ReadTaskTimes{Names: []string{"w_1", "w_2"}})
	if !du.Defs["w_1"] || !du.Defs["w_2"] {
		t.Fatalf("readtasktimes defuse wrong: %+v", du)
	}
	// delay uses
	du = StmtDefUse(&Delay{Seconds: Mul(S("w_1"), S("n"))})
	if !du.Uses["w_1"] || !du.Uses["n"] {
		t.Fatalf("delay defuse wrong: %+v", du)
	}
}

func TestWalkAndHasComm(t *testing.T) {
	p := figure1Program()
	var loops, sends int
	Walk(p.Body, func(s Stmt) bool {
		switch s.(type) {
		case *For:
			loops++
		case *Send:
			sends++
		}
		return true
	})
	if loops != 2 || sends != 1 {
		t.Fatalf("walk found %d loops, %d sends", loops, sends)
	}
	if !HasComm(p.Body) {
		t.Fatal("HasComm(figure1) = false")
	}
	// The compute nest alone has no comm.
	nest := p.Body[len(p.Body)-1].(*For)
	if HasComm([]Stmt{nest}) {
		t.Fatal("compute nest reported as having comm")
	}
	// Walk with early cutoff must not descend.
	count := 0
	Walk(p.Body, func(s Stmt) bool { count++; return false })
	if count != len(p.Body) {
		t.Fatalf("cutoff walk visited %d, want %d", count, len(p.Body))
	}
}

func TestArraysUsed(t *testing.T) {
	p := figure1Program()
	used := ArraysUsed(p)
	if !used["A"] || !used["D"] {
		t.Fatalf("ArraysUsed = %v", used)
	}
	// Add an unused array; it must not appear.
	p.Arrays = append(p.Arrays, &ArrayDecl{Name: "UNUSED", Dims: []Expr{N(10)}, Elem: 8})
	used = ArraysUsed(p)
	if used["UNUSED"] {
		t.Fatal("unused array reported as used")
	}
}

func TestSimplifyIR(t *testing.T) {
	cases := []struct {
		in   Expr
		want string
	}{
		{Add(S("x"), N(0)), "x"},
		{Mul(N(1), S("x")), "x"},
		{Mul(S("x"), N(0)), "0"},
		{Add(N(2), N(3)), "5"},
		{Call{"ceil", N(1.5)}, "2"},
		{SumE{"i", N(1), S("n"), N(3)}, "(3 * max(0, n))"},
		{Div(S("x"), N(1)), "x"},
	}
	for _, c := range cases {
		got := Simplify(c.in).String()
		if got != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
	// Nested sums with index-independent bodies collapse fully.
	nest := SumE{"j", N(1), S("M"), SumE{"i", N(1), S("N"), N(2)}}
	s := Simplify(nest)
	if _, isSum := s.(SumE); isSum {
		t.Fatalf("nested sum did not collapse: %s", s)
	}
	// Index-dependent sums must be preserved.
	tri := SumE{"i", N(1), S("n"), S("i")}
	if _, isSum := Simplify(tri).(SumE); !isSum {
		t.Fatal("index-dependent sum wrongly collapsed")
	}
}

func TestSimplifyPreservesIdxSubtrees(t *testing.T) {
	e := At("A", Add(S("i"), N(0)))
	got := Simplify(e).String()
	if got != "A(i)" {
		t.Fatalf("Simplify = %s, want A(i)", got)
	}
}

func TestSubstScalar(t *testing.T) {
	e := Add(S("x"), At("A", S("x")))
	got := SubstScalar(e, "x", N(7)).String()
	if got != "(7 + A(7))" {
		t.Fatalf("SubstScalar = %s", got)
	}
	// Bound sum index is not substituted in the body.
	sum := SumE{"i", S("i"), S("n"), S("i")}
	got = SubstScalar(sum, "i", N(3)).String()
	if got != "sum(i, 3, n, i)" {
		t.Fatalf("SubstScalar sum = %s", got)
	}
}

func TestSecAndPtHelpers(t *testing.T) {
	sec := Sec(N(1), N(5), N(2), N(2))
	if len(sec) != 2 || sec[0].Lo.String() != "1" || sec[1].Hi.String() != "2" {
		t.Fatalf("Sec = %+v", sec)
	}
	pt := Pt(S("i"), S("j"))
	if len(pt) != 2 || pt[0].Lo.String() != "i" || pt[0].Hi.String() != "i" {
		t.Fatalf("Pt = %+v", pt)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sec with odd bounds must panic")
		}
	}()
	Sec(N(1))
}

func TestAddNMulN(t *testing.T) {
	if AddN(N(1), N(2), N(3)).String() != "((1 + 2) + 3)" {
		t.Fatal("AddN wrong")
	}
	if MulN(S("a"), S("b")).String() != "(a * b)" {
		t.Fatal("MulN wrong")
	}
}

func TestTimedAndDelayPrint(t *testing.T) {
	var sb strings.Builder
	(&Timed{ID: "t1", Units: S("c"), Body: Block(SetS("x", N(1)))}).write(&sb, 0)
	out := sb.String()
	if !strings.Contains(out, "start_timer") || !strings.Contains(out, "stop_timer") {
		t.Fatalf("timed print: %s", out)
	}
	sb.Reset()
	(&Delay{Seconds: Mul(S("w_1"), S("c")), Task: "t1"}).write(&sb, 0)
	if !strings.Contains(sb.String(), "call delay((w_1 * c)) ! task t1") {
		t.Fatalf("delay print: %s", sb.String())
	}
}
