package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseExpr reads a runtime expression in the syntax produced by
// Expr.String: numbers, scalars, array references NAME(idx, ...),
// arithmetic and comparison operators, min/max/ceildiv, the unary
// intrinsics, and sum(i, lo, hi, body).
func ParseExpr(src string) (Expr, error) {
	p := &exprParser{src: src}
	p.next()
	e, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != etEOF {
		return nil, fmt.Errorf("ir: unexpected %q at offset %d in %q", p.tok.text, p.tok.pos, src)
	}
	return e, nil
}

// MustParseExpr is ParseExpr but panics on error.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

type eTokKind int

const (
	etEOF eTokKind = iota
	etNum
	etIdent
	etOp
	etLParen
	etRParen
	etComma
)

type eTok struct {
	kind eTokKind
	text string
	pos  int
}

type exprParser struct {
	src string
	off int
	tok eTok
}

func (p *exprParser) next() {
	for p.off < len(p.src) && unicode.IsSpace(rune(p.src[p.off])) {
		p.off++
	}
	start := p.off
	if p.off >= len(p.src) {
		p.tok = eTok{etEOF, "", start}
		return
	}
	c := p.src[p.off]
	switch {
	case c >= '0' && c <= '9' || c == '.':
		for p.off < len(p.src) && (isExprNumChar(p.src[p.off]) ||
			((p.src[p.off] == '+' || p.src[p.off] == '-') && p.off > start &&
				(p.src[p.off-1] == 'e' || p.src[p.off-1] == 'E'))) {
			p.off++
		}
		p.tok = eTok{etNum, p.src[start:p.off], start}
	case c == '_' || unicode.IsLetter(rune(c)):
		for p.off < len(p.src) && (p.src[p.off] == '_' ||
			unicode.IsLetter(rune(p.src[p.off])) || unicode.IsDigit(rune(p.src[p.off]))) {
			p.off++
		}
		p.tok = eTok{etIdent, p.src[start:p.off], start}
	case c == '(':
		p.off++
		p.tok = eTok{etLParen, "(", start}
	case c == ')':
		p.off++
		p.tok = eTok{etRParen, ")", start}
	case c == ',':
		p.off++
		p.tok = eTok{etComma, ",", start}
	default:
		if p.off+1 < len(p.src) {
			switch p.src[p.off : p.off+2] {
			case "//", "<=", ">=", "==", "!=":
				p.tok = eTok{etOp, p.src[p.off : p.off+2], start}
				p.off += 2
				return
			}
		}
		if strings.ContainsRune("+-*/%<>", rune(c)) {
			p.off++
			p.tok = eTok{etOp, string(c), start}
			return
		}
		p.tok = eTok{etOp, string(c), start}
		p.off++
	}
}

func isExprNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E'
}

var exprCmpOps = map[string]Op{
	"<": OpLT, "<=": OpLE, ">": OpGT, ">=": OpGE, "==": OpEQ, "!=": OpNE,
}

func (p *exprParser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == etOp {
		if op, ok := exprCmpOps[p.tok.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Bin{op, l, r}, nil
		}
	}
	return l, nil
}

func (p *exprParser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == etOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := OpAdd
		if p.tok.text == "-" {
			op = OpSub
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = Bin{op, l, r}
	}
	return l, nil
}

var exprMulOps = map[string]Op{"*": OpMul, "/": OpDiv, "//": OpIDiv, "%": OpMod}

func (p *exprParser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == etOp {
		op, ok := exprMulOps[p.tok.text]
		if !ok {
			break
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = Bin{op, l, r}
	}
	return l, nil
}

func (p *exprParser) parseUnary() (Expr, error) {
	if p.tok.kind == etOp && p.tok.text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold a leading minus into negative literals, as the printer
		// emits them.
		if n, ok := e.(Num); ok {
			return Num{-n.Value}, nil
		}
		return Bin{OpSub, Num{0}, e}, nil
	}
	return p.parsePrimary()
}

var exprBinFuncs = map[string]Op{"min": OpMin, "max": OpMax, "ceildiv": OpCeilDiv}

func (p *exprParser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case etNum:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("ir: bad number %q: %v", p.tok.text, err)
		}
		p.next()
		return Num{v}, nil
	case etIdent:
		name := p.tok.text
		p.next()
		if p.tok.kind != etLParen {
			return Scalar{name}, nil
		}
		return p.parseCall(name)
	case etLParen:
		p.next()
		e, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != etRParen {
			return nil, fmt.Errorf("ir: expected ')' at offset %d", p.tok.pos)
		}
		p.next()
		return e, nil
	}
	return nil, fmt.Errorf("ir: unexpected %q at offset %d", p.tok.text, p.tok.pos)
}

// parseCall handles function applications and array references; the name
// disambiguates (known operators and intrinsics are functions, anything
// else is an array).
func (p *exprParser) parseCall(name string) (Expr, error) {
	p.next() // consume '('
	if name == "sum" {
		if p.tok.kind != etIdent {
			return nil, fmt.Errorf("ir: sum index must be an identifier at offset %d", p.tok.pos)
		}
		idx := p.tok.text
		p.next()
		var args []Expr
		for i := 0; i < 3; i++ {
			if p.tok.kind != etComma {
				return nil, fmt.Errorf("ir: sum expects 4 arguments at offset %d", p.tok.pos)
			}
			p.next()
			a, err := p.parseCmp()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		if p.tok.kind != etRParen {
			return nil, fmt.Errorf("ir: expected ')' at offset %d", p.tok.pos)
		}
		p.next()
		return SumE{Index: idx, Lo: args[0], Hi: args[1], Body: args[2]}, nil
	}
	var args []Expr
	for {
		a, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.tok.kind == etComma {
			p.next()
			continue
		}
		break
	}
	if p.tok.kind != etRParen {
		return nil, fmt.Errorf("ir: expected ')' at offset %d", p.tok.pos)
	}
	p.next()
	if op, ok := exprBinFuncs[name]; ok {
		if len(args) != 2 {
			return nil, fmt.Errorf("ir: %s expects 2 arguments, got %d", name, len(args))
		}
		return Bin{op, args[0], args[1]}, nil
	}
	if _, ok := Intrinsics[name]; ok {
		if len(args) != 1 {
			return nil, fmt.Errorf("ir: %s expects 1 argument, got %d", name, len(args))
		}
		return Call{name, args[0]}, nil
	}
	// Array reference.
	return Idx{Array: name, Index: args}, nil
}
