package ir

import (
	"strings"
	"testing"
)

// locProgram exercises every construct the line accounting must mirror:
// params, array decls, nested loops, if with and without else, and timed
// sections.
func locProgram() *Program {
	return &Program{
		Name:   "locdemo",
		Params: []string{"N", "STEPS"},
		Arrays: []*ArrayDecl{
			{Name: "A", Dims: []Expr{S("N"), S("N")}, Elem: 8},
			{Name: "B", Dims: []Expr{S("N")}, Elem: 4},
		},
		Body: Block(
			&ReadInput{Var: "N"},
			SetS("b", CeilDiv(S("N"), S(BuiltinP))),
			Loop("outer", "j", N(1), S("N"),
				Loop("", "i", N(1), S("b"),
					SetA("A", IX(S("i"), S("j")), Add(S("i"), S("j")))),
				&If{Cond: GT(S(BuiltinMyID), N(0)),
					Then: Block(&Send{Dest: Sub(S(BuiltinMyID), N(1)), Tag: 9, Array: "B",
						Section: Sec(N(1), S("b"))}),
					Else: Block(&Barrier{})},
			),
			&Timed{ID: "solve", Units: S("N"), Body: Block(
				&If{Cond: LT(S("b"), N(2)), Then: Block(&Barrier{})},
				&Allreduce{Op: "max", Vars: []string{"b"}},
			)},
		),
	}
}

// Every statement's recorded line must hold that statement's header text
// in the canonical listing.
func verifyLines(t *testing.T, p *Program) {
	t.Helper()
	listing := strings.Split(p.String(), "\n")
	lines := p.StmtLines()
	if len(lines) == 0 {
		t.Fatal("StmtLines returned no entries")
	}
	var walkStmts func(body []Stmt)
	walkStmts = func(body []Stmt) {
		for _, s := range body {
			ln, ok := lines[s]
			if !ok {
				t.Errorf("%s: statement %q has no line", p.Name, StmtHead(s))
				continue
			}
			if ln < 1 || ln > len(listing) {
				t.Errorf("%s: line %d out of range for %q", p.Name, ln, StmtHead(s))
				continue
			}
			got := strings.TrimSpace(listing[ln-1])
			want := strings.TrimSpace(StmtHead(s))
			if got != want {
				t.Errorf("%s: line %d is %q, want header %q", p.Name, ln, got, want)
			}
			switch x := s.(type) {
			case *For:
				walkStmts(x.Body)
			case *If:
				walkStmts(x.Then)
				walkStmts(x.Else)
			case *Timed:
				walkStmts(x.Body)
			}
		}
	}
	walkStmts(p.Body)
}

func TestStmtLinesMatchListing(t *testing.T) {
	verifyLines(t, locProgram())
}

// Line numbers survive a print→parse round trip: the reparsed program's
// own accounting agrees with its (identical) listing.
func TestStmtLinesStableAcrossParse(t *testing.T) {
	p := locProgram()
	q, err := Parse(p.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if q.String() != p.String() {
		t.Fatal("print->parse->print not stable; line anchors would drift")
	}
	verifyLines(t, q)
}

func TestStmtHeadSimpleStatements(t *testing.T) {
	cases := map[Stmt]string{
		SetS("x", N(1)): "x = 1",
		&Barrier{}:      "BARRIER",
		&For{Var: "i", Lo: N(1), Hi: N(3), Label: "lab"}: "do i = 1, 3 ! lab",
		&If{Cond: GT(S("x"), N(0))}:                      "if ((x > 0)) then",
	}
	for s, want := range cases {
		if got := StmtHead(s); got != want {
			t.Errorf("StmtHead = %q, want %q", got, want)
		}
	}
}
