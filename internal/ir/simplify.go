package ir

import "mpisim/internal/symexpr"

// Simplify folds constants and applies algebraic identities to a runtime
// expression, including collapsing index-independent summations to closed
// form. The compiler applies it to every synthesized scaling function so
// that evaluating a Delay argument is O(depth) instead of O(iterations).
func Simplify(e Expr) Expr {
	switch x := e.(type) {
	case Num, Scalar:
		return e
	case Idx:
		idx := make([]Expr, len(x.Index))
		for i, sub := range x.Index {
			idx[i] = Simplify(sub)
		}
		return Idx{x.Array, idx}
	case Bin:
		return simplifyBin(Bin{x.Op, Simplify(x.L), Simplify(x.R)})
	case Call:
		arg := Simplify(x.Arg)
		if c, ok := arg.(Num); ok {
			if fn, known := Intrinsics[x.Name]; known {
				return Num{fn(c.Value)}
			}
		}
		return Call{x.Name, arg}
	case SumE:
		lo, hi, body := Simplify(x.Lo), Simplify(x.Hi), Simplify(x.Body)
		free := map[string]bool{}
		ScalarsIn(body, free, free)
		if !free[x.Index] {
			// sum_{i=lo..hi} c  ->  c * max(0, hi-lo+1)
			count := Simplify(MaxE(N(0), Add(Sub(hi, lo), N(1))))
			return simplifyBin(Bin{OpMul, body, count})
		}
		return SumE{x.Index, lo, hi, body}
	}
	return e
}

func simplifyBin(b Bin) Expr {
	lc, lIsC := b.L.(Num)
	rc, rIsC := b.R.(Num)
	if lIsC && rIsC {
		if v, err := symexpr.ApplyOp(b.Op, lc.Value, rc.Value); err == nil {
			return Num{v}
		}
		return b
	}
	switch b.Op {
	case OpAdd:
		if lIsC && lc.Value == 0 {
			return b.R
		}
		if rIsC && rc.Value == 0 {
			return b.L
		}
		// Reassociate (x - c1) + c2 and (x + c1) + c2 so trip-count
		// expressions like (n-1)+1 fold away.
		if rIsC {
			if lb, ok := b.L.(Bin); ok {
				if inner, ok := lb.R.(Num); ok {
					switch lb.Op {
					case OpSub:
						return simplifyBin(Bin{OpAdd, lb.L, Num{rc.Value - inner.Value}})
					case OpAdd:
						return simplifyBin(Bin{OpAdd, lb.L, Num{rc.Value + inner.Value}})
					}
				}
			}
		}
	case OpSub:
		if rIsC && rc.Value == 0 {
			return b.L
		}
		if b.L.String() == b.R.String() {
			return Num{0}
		}
	case OpMul:
		if lIsC {
			if lc.Value == 0 {
				return Num{0}
			}
			if lc.Value == 1 {
				return b.R
			}
		}
		if rIsC {
			if rc.Value == 0 {
				return Num{0}
			}
			if rc.Value == 1 {
				return b.L
			}
		}
	case OpDiv, OpIDiv, OpCeilDiv:
		if rIsC && rc.Value == 1 {
			return b.L
		}
	}
	return b
}

// SubstScalar replaces every free occurrence of a scalar by repl.
func SubstScalar(e Expr, name string, repl Expr) Expr {
	switch x := e.(type) {
	case Num:
		return x
	case Scalar:
		if x.Name == name {
			return repl
		}
		return x
	case Idx:
		idx := make([]Expr, len(x.Index))
		for i, sub := range x.Index {
			idx[i] = SubstScalar(sub, name, repl)
		}
		return Idx{x.Array, idx}
	case Bin:
		return Bin{x.Op, SubstScalar(x.L, name, repl), SubstScalar(x.R, name, repl)}
	case Call:
		return Call{x.Name, SubstScalar(x.Arg, name, repl)}
	case SumE:
		lo := SubstScalar(x.Lo, name, repl)
		hi := SubstScalar(x.Hi, name, repl)
		body := x.Body
		if x.Index != name {
			body = SubstScalar(body, name, repl)
		}
		return SumE{x.Index, lo, hi, body}
	}
	return e
}
