package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a program in the textual form produced by Program.String —
// the Fortran-flavoured pseudocode this package prints — so programs can
// be stored in files, edited, and fed back to the compiler and
// simulator. Parse(p.String()) reproduces p for every valid program
// (round-trip property, enforced by tests).
//
// Grammar (line oriented; indentation is ignored):
//
//	program NAME
//	! input NAME
//	double precision NAME(expr, ...)
//	read(*, NAME)
//	lhs = expr
//	do v = expr, expr [! label] ... enddo
//	if (expr) then ... [else ...] endif
//	SEND NAME(lo:hi, ...) to expr tag N
//	RECV NAME(lo:hi, ...) from expr tag N
//	ALLREDUCE(op) v1, v2, ...
//	BCAST from expr: v1, v2, ...
//	BARRIER
//	call delay(expr) ! task NAME
//	call read_and_broadcast(v1, v2, ...)
//	call start_timer("id") ... call stop_timer("id", units=expr)
//	end
func Parse(src string) (*Program, error) {
	pp := &progParser{}
	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		pp.lines = append(pp.lines, line)
	}
	return pp.parse()
}

// MustParse is Parse but panics on error; for tests and fixtures.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type progParser struct {
	lines []string
	pos   int
}

func (pp *progParser) errf(format string, args ...interface{}) error {
	where := "eof"
	if pp.pos < len(pp.lines) {
		where = fmt.Sprintf("line %d: %q", pp.pos+1, pp.lines[pp.pos])
	}
	return fmt.Errorf("ir: parse %s: %s", where, fmt.Sprintf(format, args...))
}

func (pp *progParser) peek() string {
	if pp.pos < len(pp.lines) {
		return pp.lines[pp.pos]
	}
	return ""
}

func (pp *progParser) next() string {
	l := pp.peek()
	pp.pos++
	return l
}

func (pp *progParser) parse() (*Program, error) {
	head := pp.next()
	if !strings.HasPrefix(head, "program ") {
		pp.pos--
		return nil, pp.errf("expected 'program NAME'")
	}
	p := &Program{Name: strings.TrimSpace(strings.TrimPrefix(head, "program "))}
	// Header: params and array declarations.
	for {
		line := pp.peek()
		switch {
		case strings.HasPrefix(line, "! input "):
			pp.next()
			p.Params = append(p.Params, strings.TrimSpace(strings.TrimPrefix(line, "! input ")))
		case strings.HasPrefix(line, "double precision "):
			pp.next()
			d, err := parseArrayDecl(strings.TrimPrefix(line, "double precision "))
			if err != nil {
				pp.pos--
				return nil, pp.errf("%v", err)
			}
			p.Arrays = append(p.Arrays, d)
		default:
			body, err := pp.block(func(l string) bool { return l == "end" })
			if err != nil {
				return nil, err
			}
			if pp.next() != "end" {
				pp.pos--
				return nil, pp.errf("expected 'end'")
			}
			p.Body = body
			return p, nil
		}
	}
}

// block parses statements until stop matches the current line (which is
// left unconsumed).
func (pp *progParser) block(stop func(string) bool) ([]Stmt, error) {
	var out []Stmt
	for {
		line := pp.peek()
		if line == "" && pp.pos >= len(pp.lines) {
			return nil, pp.errf("unexpected end of input")
		}
		if stop(line) {
			return out, nil
		}
		s, err := pp.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (pp *progParser) stmt() (Stmt, error) {
	line := pp.next()
	switch {
	case strings.HasPrefix(line, "read(*, ") && strings.HasSuffix(line, ")"):
		v := strings.TrimSuffix(strings.TrimPrefix(line, "read(*, "), ")")
		return &ReadInput{Var: strings.TrimSpace(v)}, nil

	case strings.HasPrefix(line, "do "):
		rest := strings.TrimPrefix(line, "do ")
		label := ""
		if i := strings.Index(rest, " ! "); i >= 0 {
			label = strings.TrimSpace(rest[i+3:])
			rest = rest[:i]
		}
		eq := strings.Index(rest, " = ")
		if eq < 0 {
			pp.pos--
			return nil, pp.errf("malformed do header")
		}
		v := strings.TrimSpace(rest[:eq])
		bounds, err := splitTop(rest[eq+3:])
		if err != nil || len(bounds) != 2 {
			pp.pos--
			return nil, pp.errf("do header needs 'lo, hi' bounds")
		}
		lo, err := ParseExpr(bounds[0])
		if err != nil {
			pp.pos--
			return nil, pp.errf("%v", err)
		}
		hi, err := ParseExpr(bounds[1])
		if err != nil {
			pp.pos--
			return nil, pp.errf("%v", err)
		}
		body, err := pp.block(func(l string) bool { return l == "enddo" })
		if err != nil {
			return nil, err
		}
		pp.next() // enddo
		return &For{Var: v, Lo: lo, Hi: hi, Body: body, Label: label}, nil

	case strings.HasPrefix(line, "if (") && strings.HasSuffix(line, ") then"):
		condSrc := strings.TrimSuffix(strings.TrimPrefix(line, "if ("), ") then")
		cond, err := ParseExpr(condSrc)
		if err != nil {
			pp.pos--
			return nil, pp.errf("%v", err)
		}
		then, err := pp.block(func(l string) bool { return l == "else" || l == "endif" })
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if pp.peek() == "else" {
			pp.next()
			els, err = pp.block(func(l string) bool { return l == "endif" })
			if err != nil {
				return nil, err
			}
		}
		if pp.next() != "endif" {
			pp.pos--
			return nil, pp.errf("expected 'endif'")
		}
		return &If{Cond: cond, Then: then, Else: els}, nil

	case strings.HasPrefix(line, "SEND "), strings.HasPrefix(line, "RECV "):
		return pp.commStmt(line)

	case strings.HasPrefix(line, "ALLREDUCE("):
		rest := strings.TrimPrefix(line, "ALLREDUCE(")
		close := strings.Index(rest, ")")
		if close < 0 {
			pp.pos--
			return nil, pp.errf("malformed ALLREDUCE")
		}
		op := rest[:close]
		vars := splitNames(rest[close+1:])
		return &Allreduce{Op: op, Vars: vars}, nil

	case strings.HasPrefix(line, "BCAST from "):
		rest := strings.TrimPrefix(line, "BCAST from ")
		colon := strings.Index(rest, ":")
		if colon < 0 {
			pp.pos--
			return nil, pp.errf("malformed BCAST")
		}
		root, err := ParseExpr(rest[:colon])
		if err != nil {
			pp.pos--
			return nil, pp.errf("%v", err)
		}
		return &Bcast{Root: root, Vars: splitNames(rest[colon+1:])}, nil

	case line == "BARRIER":
		return &Barrier{}, nil

	case strings.HasPrefix(line, "call delay("):
		rest := strings.TrimPrefix(line, "call delay(")
		task := ""
		if i := strings.Index(rest, ") ! task "); i >= 0 {
			task = strings.TrimSpace(rest[i+len(") ! task "):])
			rest = rest[:i]
		} else if strings.HasSuffix(rest, ")") {
			rest = strings.TrimSuffix(rest, ")")
		} else {
			pp.pos--
			return nil, pp.errf("malformed delay call")
		}
		sec, err := ParseExpr(rest)
		if err != nil {
			pp.pos--
			return nil, pp.errf("%v", err)
		}
		return &Delay{Seconds: sec, Task: task}, nil

	case strings.HasPrefix(line, "call read_and_broadcast(") && strings.HasSuffix(line, ")"):
		inner := strings.TrimSuffix(strings.TrimPrefix(line, "call read_and_broadcast("), ")")
		return &ReadTaskTimes{Names: splitNames(inner)}, nil

	case strings.HasPrefix(line, "call start_timer("):
		id, err := parseQuoted(strings.TrimSuffix(strings.TrimPrefix(line, "call start_timer("), ")"))
		if err != nil {
			pp.pos--
			return nil, pp.errf("%v", err)
		}
		stopPrefix := "call stop_timer("
		body, err := pp.block(func(l string) bool { return strings.HasPrefix(l, stopPrefix) })
		if err != nil {
			return nil, err
		}
		stopLine := pp.next()
		inner := strings.TrimSuffix(strings.TrimPrefix(stopLine, stopPrefix), ")")
		parts, err := splitTop(inner)
		if err != nil || len(parts) != 2 || !strings.HasPrefix(parts[1], "units=") {
			pp.pos--
			return nil, pp.errf("malformed stop_timer")
		}
		stopID, err := parseQuoted(parts[0])
		if err != nil || stopID != id {
			pp.pos--
			return nil, pp.errf("stop_timer id mismatch (%q vs %q)", stopID, id)
		}
		units, err := ParseExpr(strings.TrimPrefix(parts[1], "units="))
		if err != nil {
			pp.pos--
			return nil, pp.errf("%v", err)
		}
		return &Timed{ID: id, Units: units, Body: body}, nil

	default:
		// Assignment: lhs = rhs.
		eq := topLevelAssign(line)
		if eq < 0 {
			pp.pos--
			return nil, pp.errf("unrecognized statement")
		}
		lhsSrc := strings.TrimSpace(line[:eq])
		rhs, err := ParseExpr(line[eq+1:])
		if err != nil {
			pp.pos--
			return nil, pp.errf("%v", err)
		}
		lhs, err := parseRef(lhsSrc)
		if err != nil {
			pp.pos--
			return nil, pp.errf("%v", err)
		}
		return &Assign{LHS: lhs, RHS: rhs}, nil
	}
}

// commStmt parses SEND/RECV lines.
func (pp *progParser) commStmt(line string) (Stmt, error) {
	isSend := strings.HasPrefix(line, "SEND ")
	rest := line[5:]
	kw := " from "
	if isSend {
		kw = " to "
	}
	ki := lastTopLevelIndex(rest, kw)
	if ki < 0 {
		pp.pos--
		return nil, pp.errf("malformed communication statement")
	}
	secSrc := rest[:ki]
	tail := rest[ki+len(kw):]
	ti := strings.LastIndex(tail, " tag ")
	if ti < 0 {
		pp.pos--
		return nil, pp.errf("missing tag")
	}
	peer, err := ParseExpr(tail[:ti])
	if err != nil {
		pp.pos--
		return nil, pp.errf("%v", err)
	}
	tag, err := strconv.Atoi(strings.TrimSpace(tail[ti+5:]))
	if err != nil {
		pp.pos--
		return nil, pp.errf("bad tag: %v", err)
	}
	array, sec, err := parseSection(secSrc)
	if err != nil {
		pp.pos--
		return nil, pp.errf("%v", err)
	}
	if isSend {
		return &Send{Dest: peer, Tag: tag, Array: array, Section: sec}, nil
	}
	return &Recv{Src: peer, Tag: tag, Array: array, Section: sec}, nil
}

// --- helpers --------------------------------------------------------------

// parseArrayDecl parses `NAME(expr, ...)`.
func parseArrayDecl(s string) (*ArrayDecl, error) {
	name, args, err := nameAndArgs(s)
	if err != nil {
		return nil, err
	}
	d := &ArrayDecl{Name: name, Elem: 8}
	for _, a := range args {
		e, err := ParseExpr(a)
		if err != nil {
			return nil, err
		}
		d.Dims = append(d.Dims, e)
	}
	return d, nil
}

// parseRef parses an assignment target.
func parseRef(s string) (Ref, error) {
	if !strings.Contains(s, "(") {
		if !isIdent(s) {
			return Ref{}, fmt.Errorf("bad assignment target %q", s)
		}
		return Ref{Name: s}, nil
	}
	name, args, err := nameAndArgs(s)
	if err != nil {
		return Ref{}, err
	}
	ref := Ref{Name: name}
	for _, a := range args {
		e, err := ParseExpr(a)
		if err != nil {
			return Ref{}, err
		}
		ref.Index = append(ref.Index, e)
	}
	return ref, nil
}

// parseSection parses `NAME(lo:hi, lo:hi, ...)`.
func parseSection(s string) (string, []Range, error) {
	name, args, err := nameAndArgs(s)
	if err != nil {
		return "", nil, err
	}
	var sec []Range
	for _, a := range args {
		colon := topLevelColon(a)
		if colon < 0 {
			return "", nil, fmt.Errorf("section range %q missing ':'", a)
		}
		lo, err := ParseExpr(a[:colon])
		if err != nil {
			return "", nil, err
		}
		hi, err := ParseExpr(a[colon+1:])
		if err != nil {
			return "", nil, err
		}
		sec = append(sec, Range{Lo: lo, Hi: hi})
	}
	return name, sec, nil
}

// nameAndArgs splits `NAME(a, b, c)` into the name and top-level args.
func nameAndArgs(s string) (string, []string, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("expected NAME(...), got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if !isIdent(name) {
		return "", nil, fmt.Errorf("bad name %q", name)
	}
	args, err := splitTop(s[open+1 : len(s)-1])
	if err != nil {
		return "", nil, err
	}
	return name, args, nil
}

// splitTop splits a comma-separated list at depth zero.
func splitTop(s string) ([]string, error) {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced parentheses in %q", s)
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced parentheses in %q", s)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

// splitNames splits a comma-separated identifier list.
func splitNames(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// topLevelColon finds a ':' at parenthesis depth zero.
func topLevelColon(s string) int {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ':':
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// lastTopLevelIndex finds the last occurrence of sub at depth zero.
func lastTopLevelIndex(s, sub string) int {
	depth := 0
	best := -1
	for i := 0; i+len(sub) <= len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth == 0 && strings.HasPrefix(s[i:], sub) {
			best = i
		}
	}
	return best
}

// topLevelAssign finds the '=' of an assignment (depth zero, not part of
// a comparison operator).
func topLevelAssign(s string) int {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case '=':
			if depth != 0 {
				continue
			}
			if i > 0 && strings.ContainsRune("<>!=", rune(s[i-1])) {
				continue
			}
			if i+1 < len(s) && s[i+1] == '=' {
				continue
			}
			return i
		}
	}
	return -1
}

func parseQuoted(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	return s[1 : len(s)-1], nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == '_' || unicode.IsLetter(r) || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}
