package ir

import (
	"fmt"
	"strings"
)

// ArrayDecl declares a per-rank array with symbolic dimensions. The
// dimension expressions may reference program inputs and the built-ins P
// and myid; they are evaluated once per rank at program start (matching
// the declarations of Figure 1, e.g. D(NMAX, 1+ceil(NMAX/MINPROC))).
type ArrayDecl struct {
	Name string
	Dims []Expr
	// Elem is the element size in bytes (8 for double precision).
	Elem int64
}

// String renders the declaration.
func (d *ArrayDecl) String() string {
	parts := make([]string, len(d.Dims))
	for i, e := range d.Dims {
		parts[i] = e.String()
	}
	return fmt.Sprintf("double precision %s(%s)", d.Name, strings.Join(parts, ", "))
}

// Program is an SPMD message-passing program. The built-in scalars P and
// myid are bound before the body runs; every ReadInput pulls a value from
// the run configuration.
type Program struct {
	Name   string
	Params []string // input scalar names (documentation + validation)
	Arrays []*ArrayDecl
	Body   []Stmt
}

// Array returns the declaration with the given name, or nil.
func (p *Program) Array(name string) *ArrayDecl {
	for _, d := range p.Arrays {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// String renders the whole program as pseudocode.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	for _, par := range p.Params {
		fmt.Fprintf(&sb, "  ! input %s\n", par)
	}
	for _, d := range p.Arrays {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	writeBlock(&sb, p.Body, 1)
	sb.WriteString("end\n")
	return sb.String()
}

// Builtin scalar names bound by the runtime.
const (
	BuiltinP    = "P"
	BuiltinMyID = "myid"
)

// Validate checks structural well-formedness: unique declarations, array
// references matching declared rank, and communication sections matching
// array rank. It walks the whole program.
func (p *Program) Validate() error {
	dims := map[string]int{}
	for _, d := range p.Arrays {
		if _, dup := dims[d.Name]; dup {
			return fmt.Errorf("ir: duplicate array %q", d.Name)
		}
		if len(d.Dims) == 0 {
			return fmt.Errorf("ir: array %q has no dimensions", d.Name)
		}
		if d.Elem <= 0 {
			return fmt.Errorf("ir: array %q has non-positive element size", d.Name)
		}
		dims[d.Name] = len(d.Dims)
		for _, e := range d.Dims {
			if HasArrayRef(e) {
				return fmt.Errorf("ir: array %q dimension references an array", d.Name)
			}
		}
	}
	v := &validator{dims: dims}
	for _, d := range p.Arrays {
		for _, e := range d.Dims {
			v.expr(e)
		}
	}
	v.block(p.Body)
	return v.err
}

type validator struct {
	dims map[string]int
	err  error
}

func (v *validator) fail(format string, args ...interface{}) {
	if v.err == nil {
		v.err = fmt.Errorf("ir: "+format, args...)
	}
}

func (v *validator) expr(e Expr) {
	if v.err != nil || e == nil {
		return
	}
	switch x := e.(type) {
	case Num, Scalar:
	case Idx:
		n, ok := v.dims[x.Array]
		if !ok {
			v.fail("reference to undeclared array %q", x.Array)
			return
		}
		if len(x.Index) != n {
			v.fail("array %q indexed with %d subscripts, declared with %d", x.Array, len(x.Index), n)
			return
		}
		for _, i := range x.Index {
			v.expr(i)
		}
	case Bin:
		v.expr(x.L)
		v.expr(x.R)
	case Call:
		if _, ok := Intrinsics[x.Name]; !ok {
			v.fail("unknown intrinsic %q", x.Name)
			return
		}
		v.expr(x.Arg)
	case SumE:
		v.expr(x.Lo)
		v.expr(x.Hi)
		v.expr(x.Body)
	default:
		v.fail("unknown expression type %T", e)
	}
}

func (v *validator) section(array string, sec []Range) {
	n, ok := v.dims[array]
	if !ok {
		v.fail("communication references undeclared array %q", array)
		return
	}
	if len(sec) != n {
		v.fail("section of %q has %d ranges, array has %d dims", array, len(sec), n)
		return
	}
	for _, r := range sec {
		v.expr(r.Lo)
		v.expr(r.Hi)
	}
}

func (v *validator) block(body []Stmt) {
	for _, s := range body {
		v.stmt(s)
		if v.err != nil {
			return
		}
	}
}

func (v *validator) stmt(s Stmt) {
	switch x := s.(type) {
	case *Assign:
		if x.LHS.IsArray() {
			v.expr(Idx{x.LHS.Name, x.LHS.Index})
		} else if x.LHS.Name == "" {
			v.fail("assignment to empty name")
		}
		v.expr(x.RHS)
	case *For:
		if x.Var == "" {
			v.fail("loop with empty induction variable")
		}
		v.expr(x.Lo)
		v.expr(x.Hi)
		v.block(x.Body)
	case *If:
		v.expr(x.Cond)
		v.block(x.Then)
		v.block(x.Else)
	case *Send:
		v.expr(x.Dest)
		v.section(x.Array, x.Section)
	case *Recv:
		v.expr(x.Src)
		v.section(x.Array, x.Section)
	case *Allreduce:
		switch x.Op {
		case "sum", "max", "min":
		default:
			v.fail("allreduce with unknown op %q", x.Op)
		}
		if len(x.Vars) == 0 {
			v.fail("allreduce with no variables")
		}
	case *Bcast:
		v.expr(x.Root)
		if len(x.Vars) == 0 {
			v.fail("bcast with no variables")
		}
	case *Barrier, *ReadInput, *ReadTaskTimes:
	case *Delay:
		v.expr(x.Seconds)
	case *Timed:
		v.expr(x.Units)
		v.block(x.Body)
	default:
		v.fail("unknown statement type %T", s)
	}
}

// Block is a convenience constructor for statement lists.
func Block(stmts ...Stmt) []Stmt { return stmts }

// Loop builds a labeled For statement.
func Loop(label, v string, lo, hi Expr, body ...Stmt) *For {
	return &For{Var: v, Lo: lo, Hi: hi, Body: body, Label: label}
}

// SetS assigns an expression to a scalar.
func SetS(name string, rhs Expr) *Assign { return &Assign{LHS: Ref{Name: name}, RHS: rhs} }

// SetA assigns an expression to an array element.
func SetA(array string, idx []Expr, rhs Expr) *Assign {
	return &Assign{LHS: Ref{Name: array, Index: idx}, RHS: rhs}
}

// IX builds an index list.
func IX(idx ...Expr) []Expr { return idx }

// Sec builds a section from (lo,hi) pairs.
func Sec(bounds ...Expr) []Range {
	if len(bounds)%2 != 0 {
		panic("ir: Sec needs an even number of bounds")
	}
	sec := make([]Range, len(bounds)/2)
	for i := range sec {
		sec[i] = Range{bounds[2*i], bounds[2*i+1]}
	}
	return sec
}

// Pt builds a single-element section at the given indices.
func Pt(idx ...Expr) []Range {
	sec := make([]Range, len(idx))
	for i, e := range idx {
		sec[i] = Range{e, e}
	}
	return sec
}
