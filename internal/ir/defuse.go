package ir

// Def/use analysis at variable-name granularity (arrays are treated as
// wholes), the conservative precision at which the slicer operates. This
// matches the paper's setting: "the subset has to be conservative,
// limited by the precision of static program analysis".

// DefUse lists the variables a statement defines and uses. Partial array
// definitions (element stores, received sections) count as both a def and
// a use of the array, since the rest of the array flows through.
type DefUse struct {
	Defs map[string]bool
	Uses map[string]bool
}

func newDefUse() DefUse {
	return DefUse{Defs: map[string]bool{}, Uses: map[string]bool{}}
}

func (du DefUse) useExpr(e Expr) {
	if e == nil {
		return
	}
	ScalarsIn(e, du.Uses, du.Uses)
}

// StmtDefUse computes the def/use sets of a single statement, not
// descending into nested bodies (For/If/Timed report only their header
// expressions; the slicer walks bodies itself).
func StmtDefUse(s Stmt) DefUse {
	du := newDefUse()
	switch x := s.(type) {
	case *Assign:
		if x.LHS.IsArray() {
			// Element store: def+use of the array, use of the indices.
			du.Defs[x.LHS.Name] = true
			du.Uses[x.LHS.Name] = true
			for _, i := range x.LHS.Index {
				du.useExpr(i)
			}
		} else {
			du.Defs[x.LHS.Name] = true
		}
		du.useExpr(x.RHS)
	case *For:
		du.Defs[x.Var] = true
		du.useExpr(x.Lo)
		du.useExpr(x.Hi)
	case *If:
		du.useExpr(x.Cond)
	case *Send:
		du.useExpr(x.Dest)
		du.Uses[x.Array] = true
		for _, r := range x.Section {
			du.useExpr(r.Lo)
			du.useExpr(r.Hi)
		}
	case *Recv:
		du.useExpr(x.Src)
		du.Defs[x.Array] = true
		du.Uses[x.Array] = true // partial def
		for _, r := range x.Section {
			du.useExpr(r.Lo)
			du.useExpr(r.Hi)
		}
	case *Allreduce:
		for _, v := range x.Vars {
			du.Defs[v] = true
			du.Uses[v] = true
		}
	case *Bcast:
		du.useExpr(x.Root)
		for _, v := range x.Vars {
			du.Defs[v] = true
			du.Uses[v] = true
		}
	case *ReadInput:
		du.Defs[x.Var] = true
	case *Delay:
		du.useExpr(x.Seconds)
	case *ReadTaskTimes:
		for _, n := range x.Names {
			du.Defs[n] = true
		}
	case *Barrier, *Timed:
	}
	return du
}

// Walk visits every statement in a body tree in pre-order, calling fn.
// If fn returns false the statement's children are skipped.
func Walk(body []Stmt, fn func(Stmt) bool) {
	for _, s := range body {
		if !fn(s) {
			continue
		}
		switch x := s.(type) {
		case *For:
			Walk(x.Body, fn)
		case *If:
			Walk(x.Then, fn)
			Walk(x.Else, fn)
		case *Timed:
			Walk(x.Body, fn)
		}
	}
}

// HasComm reports whether the body tree contains any communication
// statement (the condensation criterion: "a collapsed region must contain
// no communication tasks").
func HasComm(body []Stmt) bool {
	found := false
	Walk(body, func(s Stmt) bool {
		switch s.(type) {
		case *Send, *Recv, *Allreduce, *Bcast, *Barrier, *ReadTaskTimes:
			found = true
			return false
		}
		return !found
	})
	return found
}

// ArraysUsed returns the set of array names referenced anywhere in the
// program body (communication or computation).
func ArraysUsed(p *Program) map[string]bool {
	used := map[string]bool{}
	Walk(p.Body, func(s Stmt) bool {
		du := StmtDefUse(s)
		for n := range du.Defs {
			if p.Array(n) != nil {
				used[n] = true
			}
		}
		for n := range du.Uses {
			if p.Array(n) != nil {
				used[n] = true
			}
		}
		return true
	})
	return used
}
