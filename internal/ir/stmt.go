package ir

import (
	"fmt"
	"strings"
)

// Stmt is a program statement.
type Stmt interface {
	stmtNode()
	// write renders the statement as Fortran-flavoured pseudocode.
	write(sb *strings.Builder, indent int)
}

// Ref is an assignment target: a scalar when Index is nil, otherwise an
// array element.
type Ref struct {
	Name  string
	Index []Expr
}

// String renders the reference.
func (r Ref) String() string {
	if r.Index == nil {
		return r.Name
	}
	return Idx{r.Name, r.Index}.String()
}

// IsArray reports whether the reference targets an array element.
func (r Ref) IsArray() bool { return r.Index != nil }

// Assign stores RHS into LHS.
type Assign struct {
	LHS Ref
	RHS Expr
}

func (*Assign) stmtNode() {}

// For is a Fortran-style DO loop: Var runs from Lo to Hi inclusive with
// unit step; bounds are evaluated once on entry. Loops may carry a Label
// used in task-graph and diagnostic output.
type For struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
	Label  string
}

func (*For) stmtNode() {}

// If executes Then when Cond is non-zero, else Else.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (*If) stmtNode() {}

// Range is a 1-based inclusive index range in one array dimension.
type Range struct{ Lo, Hi Expr }

// Send transmits the section Array(Section...) to rank Dest with Tag.
// Guarded sends (the "if myid > 0 then SEND" of Figure 1) are expressed
// with an enclosing If.
type Send struct {
	Dest    Expr
	Tag     int
	Array   string
	Section []Range
}

func (*Send) stmtNode() {}

// Recv receives into the section Array(Section...) from rank Src.
type Recv struct {
	Src     Expr
	Tag     int
	Array   string
	Section []Range
}

func (*Recv) stmtNode() {}

// Allreduce combines the named scalar variables across all ranks with Op
// ("sum", "max" or "min") and stores the result back everywhere.
type Allreduce struct {
	Op   string
	Vars []string
}

func (*Allreduce) stmtNode() {}

// Bcast broadcasts the named scalar variables from rank Root.
type Bcast struct {
	Root Expr
	Vars []string
}

func (*Bcast) stmtNode() {}

// Barrier synchronizes all ranks.
type Barrier struct{}

func (*Barrier) stmtNode() {}

// ReadInput reads a program input into a scalar: the "read(*, N)" of
// Figure 1. Inputs are supplied by the run configuration.
type ReadInput struct{ Var string }

func (*ReadInput) stmtNode() {}

// Delay forwards the simulation clock by Seconds: the call to the
// simulator-provided delay function that replaces collapsed tasks in
// simplified programs. Only compiler-emitted programs contain it.
type Delay struct {
	Seconds Expr
	// Task is the condensed-task identifier, for reporting.
	Task string
}

func (*Delay) stmtNode() {}

// ReadTaskTimes binds each named w_i scalar by reading the calibration
// table on rank 0 and broadcasting (the simplified program's preamble,
// paper §3.1).
type ReadTaskTimes struct{ Names []string }

func (*ReadTaskTimes) stmtNode() {}

// Timed wraps a region with timers for w_i calibration: the interpreter
// accumulates the region's elapsed simulated time together with the
// evaluated Units (the scaling function's operation count), so that
// w_i = total time / total units. Only compiler-emitted timer programs
// contain it.
type Timed struct {
	ID    string
	Units Expr
	Body  []Stmt
}

func (*Timed) stmtNode() {}

// --- pretty printing ---

func ind(sb *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		sb.WriteString("  ")
	}
}

func writeBlock(sb *strings.Builder, body []Stmt, indent int) {
	for _, s := range body {
		s.write(sb, indent)
	}
}

func (s *Assign) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	fmt.Fprintf(sb, "%s = %s\n", s.LHS, s.RHS)
}

func (s *For) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	label := ""
	if s.Label != "" {
		label = " ! " + s.Label
	}
	fmt.Fprintf(sb, "do %s = %s, %s%s\n", s.Var, s.Lo, s.Hi, label)
	writeBlock(sb, s.Body, indent+1)
	ind(sb, indent)
	sb.WriteString("enddo\n")
}

func (s *If) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	fmt.Fprintf(sb, "if (%s) then\n", s.Cond)
	writeBlock(sb, s.Then, indent+1)
	if len(s.Else) > 0 {
		ind(sb, indent)
		sb.WriteString("else\n")
		writeBlock(sb, s.Else, indent+1)
	}
	ind(sb, indent)
	sb.WriteString("endif\n")
}

func sectionString(array string, sec []Range) string {
	parts := make([]string, len(sec))
	for i, r := range sec {
		parts[i] = fmt.Sprintf("%s:%s", r.Lo, r.Hi)
	}
	return fmt.Sprintf("%s(%s)", array, strings.Join(parts, ", "))
}

func (s *Send) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	fmt.Fprintf(sb, "SEND %s to %s tag %d\n", sectionString(s.Array, s.Section), s.Dest, s.Tag)
}

func (s *Recv) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	fmt.Fprintf(sb, "RECV %s from %s tag %d\n", sectionString(s.Array, s.Section), s.Src, s.Tag)
}

func (s *Allreduce) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	fmt.Fprintf(sb, "ALLREDUCE(%s) %s\n", s.Op, strings.Join(s.Vars, ", "))
}

func (s *Bcast) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	fmt.Fprintf(sb, "BCAST from %s: %s\n", s.Root, strings.Join(s.Vars, ", "))
}

func (s *Barrier) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	sb.WriteString("BARRIER\n")
}

func (s *ReadInput) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	fmt.Fprintf(sb, "read(*, %s)\n", s.Var)
}

func (s *Delay) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	fmt.Fprintf(sb, "call delay(%s) ! task %s\n", s.Seconds, s.Task)
}

func (s *ReadTaskTimes) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	fmt.Fprintf(sb, "call read_and_broadcast(%s)\n", strings.Join(s.Names, ", "))
}

func (s *Timed) write(sb *strings.Builder, indent int) {
	ind(sb, indent)
	fmt.Fprintf(sb, "call start_timer(%q)\n", s.ID)
	writeBlock(sb, s.Body, indent+1)
	ind(sb, indent)
	fmt.Fprintf(sb, "call stop_timer(%q, units=%s)\n", s.ID, s.Units)
}
