package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mpisim/internal/apps"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
)

// flatInputs are small per-app configurations for the flat-topology
// regression runs: big enough to communicate, small enough to keep the
// measured-mode runs cheap.
func flatInputs(app string, ranks int) map[string]float64 {
	gx, gy := apps.ProcGrid(ranks)
	switch app {
	case "tomcatv":
		return apps.TomcatvInputs(64, 2)
	case "sweep3d":
		return apps.Sweep3DInputs(4, 4, 8, 2, gx, gy)
	case "nassp":
		return apps.NASSPInputs(16, 2, 2)
	case "sample":
		return apps.SampleInputs(apps.PatternWavefront, 500, 256, 4, gx, gy)
	}
	return nil
}

// runFlat runs a program in measured mode at 4 ranks under the given
// topology spec and returns the report as canonical JSON (kernel
// meta-result dropped: it is host-configuration-dependent by design).
func runFlat(t *testing.T, prog *ir.Program, inputs map[string]float64, topo string) string {
	t.Helper()
	m := machine.IBMSP()
	m.Topology = topo
	r, err := NewRunner(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	r.CollectMatrix = true
	r.CollectTrace = true
	rep, err := r.Run(Measured, 4, inputs)
	if err != nil {
		t.Fatal(err)
	}
	rep.Kernel = nil
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestNetFlatRegressionApps pins the tentpole's compatibility promise on
// every registered application: a machine with Topology "flat" predicts
// byte-for-byte the same report as the seed analytic model.
func TestNetFlatRegressionApps(t *testing.T) {
	for _, name := range apps.Names() {
		spec := apps.Registry()[name]
		inputs := flatInputs(name, 4)
		if inputs == nil {
			t.Fatalf("no flat-regression inputs for app %q", name)
		}
		seed := runFlat(t, spec.Build(), inputs, "")
		flat := runFlat(t, spec.Build(), inputs, "flat")
		if seed != flat {
			t.Errorf("%s: flat topology diverged from the seed analytic model", name)
		}
	}
}

// TestNetFlatRegressionExamples extends the pin to the example
// pseudocode programs shipped in examples/programs.
func TestNetFlatRegressionExamples(t *testing.T) {
	files, err := filepath.Glob("../../examples/programs/*.ir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	inputs := map[string]float64{"N": 32, "STEPS": 2}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ir.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		seed := runFlat(t, prog, inputs, "")
		prog2, _ := ir.Parse(string(src))
		flat := runFlat(t, prog2, inputs, "flat")
		if seed != flat {
			t.Errorf("%s: flat topology diverged from the seed analytic model", filepath.Base(f))
		}
	}
}
