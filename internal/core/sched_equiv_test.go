package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpisim/internal/apps"
	"mpisim/internal/fault"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
	"mpisim/internal/obs"
	"mpisim/internal/trace"
	"mpisim/internal/tracein"
)

// Scheduler-equivalence property tests: the continuation scheduler
// (sim/cont.go) must be invisible in every simulation artifact. Each
// program runs under the native inline path and under ForceGoroutine
// (the classic carrier-goroutine path), across worker counts — the full
// report AND the exported simulated-plane trace artifact must be
// byte-identical in every cell of the matrix.

// schedVariants is the worker-count x scheduling-path matrix.
var schedVariants = []struct {
	workers int
	force   bool
}{
	{1, false}, {1, true},
	{2, false}, {2, true},
	{8, false}, {8, true},
}

// runSched runs prog in measured mode at 4 ranks and returns the
// canonical report JSON (kernel meta-result dropped, as in the flat
// regression tests) plus the exported trace artifact.
func runSched(t *testing.T, prog *ir.Program, inputs map[string]float64,
	topo string, faults *fault.Scenario, workers int, force bool) (string, string) {
	t.Helper()
	m := machine.IBMSP()
	m.Topology = topo
	r, err := NewRunner(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	r.HostWorkers = workers
	r.RealParallel = workers > 1
	r.ForceGoroutine = force
	r.CollectMatrix = true
	r.CollectTrace = true
	r.Faults = faults
	rep, err := r.Run(Measured, 4, inputs)
	if err != nil {
		t.Fatalf("workers=%d force=%v: %v", workers, force, err)
	}
	rep.Kernel = nil
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tr := obs.NewTracer(obs.NewJSONLSink(&sb))
	if err := trace.Export(tr, rep); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return string(b), sb.String()
}

// checkSchedMatrix runs the full variant matrix for one program and
// asserts every cell equals the workers=1 native-path reference.
func checkSchedMatrix(t *testing.T, name string, build func() *ir.Program,
	inputs map[string]float64, topo string, faults *fault.Scenario) {
	t.Helper()
	refRep, refTrace := runSched(t, build(), inputs, topo, faults, 1, false)
	for _, v := range schedVariants[1:] {
		rep, tr := runSched(t, build(), inputs, topo, faults, v.workers, v.force)
		label := fmt.Sprintf("%s workers=%d force=%v", name, v.workers, v.force)
		if rep != refRep {
			t.Errorf("%s: report diverged from workers=1 continuation path", label)
		}
		if tr != refTrace {
			t.Errorf("%s: trace artifact diverged from workers=1 continuation path", label)
		}
	}
}

// TestSchedEquivalenceApps covers every registered application on the
// flat model.
func TestSchedEquivalenceApps(t *testing.T) {
	for _, name := range apps.Names() {
		spec := apps.Registry()[name]
		inputs := flatInputs(name, 4)
		if inputs == nil {
			t.Fatalf("no inputs for app %q", name)
		}
		checkSchedMatrix(t, name, spec.Build, inputs, "", nil)
	}
}

// TestSchedEquivalenceExamples covers the example pseudocode programs.
func TestSchedEquivalenceExamples(t *testing.T) {
	files, err := filepath.Glob("../../examples/programs/*.ir")
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	inputs := map[string]float64{"N": 32, "STEPS": 2}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		build := func() *ir.Program {
			prog, err := ir.Parse(string(src))
			if err != nil {
				t.Fatalf("%s: %v", f, err)
			}
			return prog
		}
		checkSchedMatrix(t, filepath.Base(f), build, inputs, "", nil)
	}
}

// TestSchedEquivalenceTopology drives the interconnect fabric — itself a
// continuation process now — through both scheduling paths under a
// contended torus.
func TestSchedEquivalenceTopology(t *testing.T) {
	spec := apps.Registry()["sample"]
	checkSchedMatrix(t, "sample/torus", spec.Build, flatInputs("sample", 4),
		"torus:dims=2x2", nil)
}

// TestSchedEquivalenceTelemetry pins the telemetry plane's first
// invariant: results are byte-identical whether the timeline/run-info
// plane is absent ("off"), attached but disabled, or armed with an
// aggressive sampling cadence — across worker counts. Telemetry reads
// the simulation; it must never steer it.
func TestSchedEquivalenceTelemetry(t *testing.T) {
	spec := apps.Registry()["sample"]
	inputs := flatInputs("sample", 4)
	modes := []string{"off", "disabled", "armed"}
	workerCounts := []int{1, 2, 8}

	run := func(mode string, workers int) (string, string) {
		r, err := NewRunner(spec.Build(), machine.IBMSP())
		if err != nil {
			t.Fatal(err)
		}
		r.HostWorkers = workers
		r.RealParallel = workers > 1
		r.CollectMatrix = true
		r.CollectTrace = true
		switch mode {
		case "disabled":
			r.Timeline = obs.NewTimeline(nil, obs.TimelineOptions{})
			r.RunInfo = obs.NewRunInfo()
		case "armed":
			tl := obs.NewTimeline(nil, obs.TimelineOptions{EveryEvents: 1})
			tl.SetEnabled(true)
			r.Timeline = tl
			r.RunInfo = obs.NewRunInfo()
		}
		rep, err := r.Run(Measured, 4, inputs)
		if err != nil {
			t.Fatalf("mode=%s workers=%d: %v", mode, workers, err)
		}
		if mode == "armed" {
			if _, seq := r.Timeline.Since(0); seq == 0 {
				t.Fatalf("mode=%s workers=%d: armed timeline captured nothing", mode, workers)
			}
			if r.RunInfo.Status().State != obs.RunDone {
				t.Fatalf("mode=%s workers=%d: run info not done: %v",
					mode, workers, r.RunInfo.Status().State)
			}
		}
		rep.Kernel = nil
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		tr := obs.NewTracer(obs.NewJSONLSink(&sb))
		if err := trace.Export(tr, rep); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return string(b), sb.String()
	}

	refRep, refTrace := run("off", 1)
	for _, mode := range modes {
		for _, workers := range workerCounts {
			if mode == "off" && workers == 1 {
				continue
			}
			rep, tr := run(mode, workers)
			if rep != refRep {
				t.Errorf("telemetry=%s workers=%d: report diverged from off/workers=1", mode, workers)
			}
			if tr != refTrace {
				t.Errorf("telemetry=%s workers=%d: trace diverged from off/workers=1", mode, workers)
			}
		}
	}
}

// TestSchedEquivalenceReplay extends the matrix to the trace frontend:
// a recorded trace replayed through internal/tracein must produce a
// byte-identical report, exported trace artifact AND re-recorded trace
// across worker counts and both scheduling paths. Replay is the third
// front door to the kernel (after the native and continuation paths);
// the determinism invariant holds there too.
func TestSchedEquivalenceReplay(t *testing.T) {
	spec := apps.Registry()["sample"]
	inputs := flatInputs("sample", 4)
	m := machine.IBMSP()
	r, err := NewRunner(spec.Build(), m)
	if err != nil {
		t.Fatal(err)
	}
	r.RecordCalls = true
	rep, err := r.Run(Measured, 4, inputs)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tracein.Record(rep, tracein.Header{
		App: "sample", Machine: m.Name, Comm: "detailed", Inputs: inputs,
	})
	if err != nil {
		t.Fatal(err)
	}

	run := func(workers int, force bool) (string, string, string) {
		rep2, err := tracein.Replay(tr, mpi.Config{
			Machine:        m,
			HostWorkers:    workers,
			RealParallel:   workers > 1,
			ForceGoroutine: force,
			CollectMatrix:  true,
			CollectTrace:   true,
			RecordCalls:    true,
		})
		if err != nil {
			t.Fatalf("workers=%d force=%v: %v", workers, force, err)
		}
		rep2.Kernel = nil
		b, err := json.Marshal(rep2)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		tre := obs.NewTracer(obs.NewJSONLSink(&sb))
		if err := trace.Export(tre, rep2); err != nil {
			t.Fatal(err)
		}
		if err := tre.Close(); err != nil {
			t.Fatal(err)
		}
		rerec, err := tracein.Record(rep2, tr.Header)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tracein.Write(&buf, rerec); err != nil {
			t.Fatal(err)
		}
		return string(b), sb.String(), buf.String()
	}

	refRep, refTrace, refRecord := run(1, false)
	for _, v := range schedVariants[1:] {
		gotRep, gotTrace, gotRecord := run(v.workers, v.force)
		label := fmt.Sprintf("replay workers=%d force=%v", v.workers, v.force)
		if gotRep != refRep {
			t.Errorf("%s: report diverged from workers=1 reference", label)
		}
		if gotTrace != refTrace {
			t.Errorf("%s: trace artifact diverged from workers=1 reference", label)
		}
		if gotRecord != refRecord {
			t.Errorf("%s: re-recorded trace diverged from workers=1 reference", label)
		}
	}
}

// TestSchedEquivalenceFaults arms a deterministic fault scenario (loss
// with retries, delay injection) so the retransmission machinery runs
// identically under both scheduling paths.
func TestSchedEquivalenceFaults(t *testing.T) {
	spec := apps.Registry()["sample"]
	faults := &fault.Scenario{
		Seed:  42,
		Loss:  []fault.LossSpec{{Prob: 0.02, From: fault.AnyRank, To: fault.AnyRank}},
		Retry: &fault.RetryConfig{Timeout: 5e-4, Backoff: 2, MaxRetries: 16},
	}
	checkSchedMatrix(t, "sample/faults", spec.Build, flatInputs("sample", 4), "", faults)
}
