// Package core is the end-to-end integration of the paper's contribution:
// the dhpf-side compilation (static task graph, condensation, slicing,
// simplified-program emission) coupled with the MPI-Sim simulation modes.
// It drives the complete Figure-2 workflow:
//
//	source program --compiler--> simplified MPI code + MPI code with timers
//	timers on the (modeled) parallel system --> measured task times w_i
//	simplified code + w_i --MPI-Sim--> performance estimates (MPI-SIM-AM)
//
// Three evaluation modes correspond to the paper's columns:
//
//	Measured   - the original program on the detailed machine model
//	             (stand-in for running on the real machine);
//	DirectExec - MPI-SIM-DE: direct execution of the computation with the
//	             simulator's analytic communication model;
//	Abstract   - MPI-SIM-AM: the compiler-simplified program with
//	             calibrated delays.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"mpisim/internal/check"
	"mpisim/internal/compiler"
	"mpisim/internal/fault"
	"mpisim/internal/interp"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
	"mpisim/internal/net"
	"mpisim/internal/obs"
	"mpisim/internal/sim"
)

// Mode selects how a program configuration is evaluated.
type Mode int

// Evaluation modes.
const (
	// Measured is the ground truth: full computation on the detailed
	// communication model.
	Measured Mode = iota
	// DirectExec is MPI-SIM-DE: full computation, analytic communication.
	DirectExec
	// Abstract is MPI-SIM-AM: the simplified program with delay calls.
	Abstract
	// PureAnalytic is the paper's §5 extension: the simplified program
	// with the abstract communication model — analytical models for both
	// the sequential tasks and the communication, with no event-level
	// simulation at all. Fastest, least accurate on dependence-heavy
	// codes (it ignores pipelining and wavefront serialization, the
	// §1 critique of fully abstract simulation).
	PureAnalytic
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Measured:
		return "measured"
	case DirectExec:
		return "MPI-SIM-DE"
	case Abstract:
		return "MPI-SIM-AM"
	case PureAnalytic:
		return "MPI-SIM-AM/abstract-comm"
	}
	return "unknown"
}

// Comm names the communication timing model the mode runs under
// (mpi.CommModel.String). Trace headers record it so replay reproduces
// the recorded schedule under the same model (see internal/tracein).
func (m Mode) Comm() string {
	switch m {
	case Measured:
		return "detailed"
	case PureAnalytic:
		return "abstract"
	}
	return "analytic"
}

// Runner owns a compiled application and a target machine, and runs it
// in any mode.
type Runner struct {
	Program  *ir.Program
	Machine  *machine.Model
	Compiled *compiler.Result
	// TaskTimes is the current w_i calibration table (set by Calibrate
	// or manually).
	TaskTimes map[string]float64
	// HostWorkers configures the simulation engine for subsequent runs.
	HostWorkers  int
	RealParallel bool
	// ForceGoroutine routes the kernel's continuation processes through
	// the classic goroutine scheduler (byte-identical results; used by the
	// scheduler-equivalence tests).
	ForceGoroutine bool
	// MemoryLimit bounds simulated target memory for DE/measured runs
	// (0 = unlimited). AM runs are never limited: their footprint is the
	// point of the technique.
	MemoryLimit int64
	// CollectMatrix enables rank-to-rank communication matrices in run
	// reports.
	CollectMatrix bool
	// CollectTrace enables per-rank activity segments in run reports.
	CollectTrace bool
	// RecordCalls enables the API-level MPI call log in run reports
	// (mpi.Report.Calls), from which internal/tracein records a
	// replayable trace.
	RecordCalls bool
	// ProfileBranches enables the paper's §3.1 profiling refinement:
	// Calibrate first measures the taken-probability of every branch,
	// recompiles so that conditionals folded into condensed tasks are
	// weighted by their measured probabilities instead of 0.5, and then
	// calibrates the w_i against the refined scaling functions.
	ProfileBranches bool
	// Metrics / Tracer attach the observability plane (internal/obs) to
	// every subsequent run's simulation kernel. Nil disables
	// instrumentation down to one pointer check per kernel hook.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	// Timeline, when non-nil and enabled, receives live time-series
	// snapshots from the kernel of every subsequent run (see
	// obs.Timeline); strictly out of band, results are unchanged.
	Timeline *obs.Timeline
	// RunInfo, when non-nil, is kept current with the run lifecycle
	// (calibrating/running/done/aborted), progress heartbeats, and the
	// horizon the percent/ETA estimates divide by: the statically known
	// virtual-time end when EstimateHorizon was consulted, else the
	// MaxVirtualTime / MaxEvents budgets.
	RunInfo *obs.RunInfo
	// LastCalibration is the collector of the most recent Calibrate call,
	// kept so callers can inspect per-coefficient fit quality
	// (Calibration.Stats) after the run.
	LastCalibration *interp.Calibration
	// Faults injects a deterministic fault scenario (internal/fault) into
	// evaluation runs. Calibration runs are never faulted: the w_i table
	// must reflect the healthy machine.
	Faults *fault.Scenario
	// MaxEvents / MaxVirtualTime / StallEvents bound evaluation runs
	// (0 = unlimited): event budget, virtual-time budget, and the
	// no-progress watchdog threshold (events processed without virtual
	// time advancing). A tripped budget returns the partial report
	// alongside a *sim.AbortError.
	MaxEvents      int64
	MaxVirtualTime float64
	StallEvents    int64
	// WallTimeout bounds each evaluation run's host wall-clock time
	// (0 = unlimited) via context cancellation; Ctx additionally lets the
	// caller cancel runs externally.
	WallTimeout time.Duration
	Ctx         context.Context
	// SkipChecks disables the pre-simulation static verification
	// (internal/check). By default every Run and Calibrate first verifies
	// the source program at the requested configuration and refuses to
	// simulate one with error-severity findings — a deadlocked or
	// mismatched program would otherwise burn a full simulation before
	// hanging or producing garbage.
	SkipChecks bool

	// checkCache memoizes verification per (ranks, inputs) configuration.
	checkCache map[string]*check.Result
	// lookahead caches the (machine-dependent, rank-independent) kernel
	// lookahead computed by Lookahead.
	lookahead float64
}

// CheckError is returned when pre-simulation verification refuses a
// configuration. Result carries the complete findings for display.
type CheckError struct {
	Result *check.Result
}

// Error implements error with a one-line summary; use Result for the
// individual diagnostics.
func (e *CheckError) Error() string {
	return fmt.Sprintf("core: static verification found %d error(s) in %s at %d ranks (set SkipChecks to simulate anyway)",
		e.Result.Errors(), e.Result.Program, e.Result.Ranks)
}

// Check runs the static communication verifier on the source program at
// a configuration. Results are cached per configuration, so the hook in
// Run costs one verification per distinct (ranks, inputs).
func (r *Runner) Check(ranks int, inputs map[string]float64) (*check.Result, error) {
	keys := make([]string, 0, len(inputs))
	for k := range inputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", ranks)
	for _, k := range keys {
		fmt.Fprintf(&sb, "|%s=%g", k, inputs[k])
	}
	key := sb.String()
	if res, ok := r.checkCache[key]; ok {
		return res, nil
	}
	res, err := check.Run(r.Program, check.Options{Ranks: ranks, Inputs: inputs, Machine: r.Machine})
	if err != nil {
		return nil, err
	}
	if r.checkCache == nil {
		r.checkCache = map[string]*check.Result{}
	}
	r.checkCache[key] = res
	return res, nil
}

// precheck is the fail-fast hook: verify before simulating.
func (r *Runner) precheck(ranks int, inputs map[string]float64) error {
	if r.SkipChecks {
		return nil
	}
	res, err := r.Check(ranks, inputs)
	if err != nil {
		return fmt.Errorf("core: static verification: %w", err)
	}
	if res.HasErrors() {
		return &CheckError{Result: res}
	}
	return nil
}

// NewRunner compiles the program for the given machine.
func NewRunner(p *ir.Program, m *machine.Model) (*Runner, error) {
	res, err := compiler.Compile(p)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Runner{Program: p, Machine: m, Compiled: res}, nil
}

// Calibrate runs the timer-instrumented program on a reference
// configuration and stores the measured w_i table (paper §3.3: "measure
// task times for one or a few selected problem sizes and number of
// processors"). It returns the table.
func (r *Runner) Calibrate(ranks int, inputs map[string]float64) (map[string]float64, error) {
	if err := r.precheck(ranks, inputs); err != nil {
		return nil, err
	}
	if r.RunInfo != nil {
		r.RunInfo.SetState(obs.RunCalibrating)
	}
	if r.ProfileBranches {
		bp := interp.NewBranchProfile()
		if _, err := interp.Run(r.Compiled.Timer, interp.Config{
			Ranks: ranks, Machine: r.Machine, Comm: mpi.Detailed,
			Inputs: inputs, BranchProfile: bp,
			HostWorkers: r.HostWorkers, RealParallel: r.RealParallel,
			Metrics: r.Metrics, Tracer: r.Tracer,
		}); err != nil {
			return nil, fmt.Errorf("core: branch-profiling run: %w", err)
		}
		refined, err := compiler.CompileOpts(r.Program,
			compiler.Options{BranchProbs: bp.Probabilities()})
		if err != nil {
			return nil, fmt.Errorf("core: recompile with branch profile: %w", err)
		}
		r.Compiled = refined
	}
	cal := interp.NewCalibration()
	_, err := interp.Run(r.Compiled.Timer, interp.Config{
		Ranks: ranks, Machine: r.Machine, Comm: mpi.Detailed,
		Inputs: inputs, Calibration: cal,
		HostWorkers: r.HostWorkers, RealParallel: r.RealParallel,
		Metrics: r.Metrics, Tracer: r.Tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("core: calibration run: %w", err)
	}
	r.LastCalibration = cal
	r.TaskTimes = cal.TaskTimes()
	return r.TaskTimes, nil
}

// Run evaluates the configuration in the given mode. Unless SkipChecks
// is set, the configuration is first statically verified and refused
// (with a CheckError) when verification finds errors. Fault scenarios
// and run limits (budgets, watchdog, wall-clock timeout) apply here but
// not to Calibrate; when a limit trips, the partial report is returned
// together with the *sim.AbortError describing why.
func (r *Runner) Run(mode Mode, ranks int, inputs map[string]float64) (*mpi.Report, error) {
	if err := r.precheck(ranks, inputs); err != nil {
		return nil, err
	}
	ctx := r.Ctx
	if r.WallTimeout > 0 {
		base := ctx
		if base == nil {
			base = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(base, r.WallTimeout)
		defer cancel()
	}
	cfg := interp.Config{
		Ranks: ranks, Machine: r.Machine, Inputs: inputs,
		HostWorkers: r.HostWorkers, RealParallel: r.RealParallel,
		ForceGoroutine: r.ForceGoroutine,
		CollectMatrix:  r.CollectMatrix,
		CollectTrace:   r.CollectTrace,
		RecordCalls:    r.RecordCalls,
		Metrics:        r.Metrics,
		Tracer:         r.Tracer,
		Timeline:       r.Timeline,
		RunInfo:        r.RunInfo,
		Faults:         r.Faults,
		Limits: sim.Limits{
			MaxEvents:   r.MaxEvents,
			MaxTime:     sim.Time(r.MaxVirtualTime),
			StallEvents: r.StallEvents,
			Ctx:         ctx,
		},
	}
	if ri := r.RunInfo; ri != nil {
		// Budget horizons fill only what an earlier static estimate
		// (EstimateHorizon) has not already set.
		ri.SetHorizon(r.MaxVirtualTime, r.MaxEvents)
		ri.SetState(obs.RunRunning)
	}
	rep, err := r.runMode(mode, cfg)
	if ri := r.RunInfo; ri != nil {
		vt := 0.0
		if rep != nil {
			vt = rep.Time
		}
		if err != nil {
			reason := err.Error()
			if ab, ok := err.(*sim.AbortError); ok {
				reason = ab.Reason
			}
			ri.Finish(obs.RunAborted, vt, reason)
		} else {
			ri.Finish(obs.RunDone, vt, "")
		}
	}
	return rep, err
}

// runMode dispatches the mode-specific program/comm-model combination.
func (r *Runner) runMode(mode Mode, cfg interp.Config) (*mpi.Report, error) {
	switch mode {
	case Measured:
		cfg.Comm = mpi.Detailed
		cfg.MemoryLimit = r.MemoryLimit
		return interp.Run(r.Program, cfg)
	case DirectExec:
		cfg.Comm = mpi.Analytic
		cfg.MemoryLimit = r.MemoryLimit
		return interp.Run(r.Program, cfg)
	case Abstract:
		if r.TaskTimes == nil {
			return nil, fmt.Errorf("core: Abstract mode requires Calibrate first")
		}
		cfg.Comm = mpi.Analytic
		cfg.TaskTimes = r.TaskTimes
		return interp.Run(r.Compiled.Simplified, cfg)
	case PureAnalytic:
		if r.TaskTimes == nil {
			return nil, fmt.Errorf("core: PureAnalytic mode requires task times (Calibrate or EstimateTaskTimes)")
		}
		cfg.Comm = mpi.AbstractComm
		cfg.TaskTimes = r.TaskTimes
		return interp.Run(r.Compiled.Simplified, cfg)
	}
	return nil, fmt.Errorf("core: unknown mode %d", mode)
}

// EstimateHorizon predicts the run's virtual-time end from the
// simplified program under the abstract communication model — no
// event-level simulation, so it costs a fraction of any real mode. It
// requires a task-time table (Calibrate or EstimateTaskTimes). When a
// RunInfo is attached, the estimate is stored as its virtual-time
// horizon so progress and ETA divide by the statically known end
// instead of a budget.
func (r *Runner) EstimateHorizon(ranks int, inputs map[string]float64) (float64, error) {
	if r.TaskTimes == nil {
		return 0, fmt.Errorf("core: EstimateHorizon requires task times (Calibrate or EstimateTaskTimes)")
	}
	rep, err := interp.Run(r.Compiled.Simplified, interp.Config{
		Ranks: ranks, Machine: r.Machine, Comm: mpi.AbstractComm,
		Inputs: inputs, TaskTimes: r.TaskTimes,
	})
	if err != nil {
		return 0, err
	}
	if r.RunInfo != nil && rep.Time > 0 {
		r.RunInfo.SetHorizon(rep.Time, 0)
	}
	return rep.Time, nil
}

// EstimateTaskTimes sets the w_i table from a purely static compiler
// estimate instead of measurement: one abstract operation costs the
// machine's OpTime scaled by the cache factor of the per-rank working
// set at the given reference configuration. This is the paper's §3.3
// alternative (a), "compiler support for estimating sequential task
// execution times analytically" — no program execution is needed at all.
func (r *Runner) EstimateTaskTimes(ranks int, inputs map[string]float64) (map[string]float64, error) {
	total, err := r.DEMemory(ranks, inputs)
	if err != nil {
		return nil, err
	}
	perRank := total / int64(ranks)
	w := r.Machine.ComputeTime(1, perRank)
	tt := make(map[string]float64, len(r.Compiled.TaskVars))
	for _, name := range r.Compiled.TaskVars {
		tt[name] = w
	}
	r.TaskTimes = tt
	return tt, nil
}

// Validation compares the three modes on one configuration.
type Validation struct {
	Ranks                        int
	MeasuredTime, DETime, AMTime float64
	// DEError and AMError are relative errors against Measured.
	DEError, AMError          float64
	MeasuredRep, DERep, AMRep *mpi.Report
}

// Validate runs measured, DE and AM on the configuration, calibrating at
// (calRanks, calInputs) if no task-time table is present yet.
func (r *Runner) Validate(ranks int, inputs map[string]float64,
	calRanks int, calInputs map[string]float64) (*Validation, error) {
	if r.TaskTimes == nil {
		if _, err := r.Calibrate(calRanks, calInputs); err != nil {
			return nil, err
		}
	}
	meas, err := r.Run(Measured, ranks, inputs)
	if err != nil {
		return nil, fmt.Errorf("core: measured run: %w", err)
	}
	de, err := r.Run(DirectExec, ranks, inputs)
	if err != nil {
		return nil, fmt.Errorf("core: DE run: %w", err)
	}
	am, err := r.Run(Abstract, ranks, inputs)
	if err != nil {
		return nil, fmt.Errorf("core: AM run: %w", err)
	}
	v := &Validation{
		Ranks:        ranks,
		MeasuredTime: meas.Time, DETime: de.Time, AMTime: am.Time,
		MeasuredRep: meas, DERep: de, AMRep: am,
	}
	if meas.Time > 0 {
		v.DEError = relAbs(de.Time, meas.Time)
		v.AMError = relAbs(am.Time, meas.Time)
	}
	return v, nil
}

func relAbs(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// DEMemory estimates the direct-execution simulator's target-state
// memory for a configuration without running it.
func (r *Runner) DEMemory(ranks int, inputs map[string]float64) (int64, error) {
	return interp.MemoryEstimate(r.Program, ranks, inputs)
}

// AMMemory estimates the optimized simulator's target-state memory for a
// configuration without running it (the simplified program's arrays).
func (r *Runner) AMMemory(ranks int, inputs map[string]float64) (int64, error) {
	return interp.MemoryEstimate(r.Compiled.Simplified, ranks, inputs)
}

// Lookahead returns the conservative lookahead used by the host-cost
// model: the machine's network latency for the flat analytic model, or
// the topology's claim-leg latency when the machine names a non-flat
// interconnect (see net.Network.Lookahead). The multi-rank intra-node
// bound depends on the placement at the actual rank count and is
// applied by the mpi layer itself; this estimate uses the
// one-rank-per-host value.
func (r *Runner) Lookahead() float64 {
	if r.lookahead > 0 {
		return r.lookahead
	}
	r.lookahead = r.Machine.Net.Latency
	if nw, err := net.Build(r.Machine, 1); err == nil && nw != nil {
		r.lookahead = nw.ClaimLatency()
	}
	return r.lookahead
}
