package core

import (
	"errors"
	"testing"

	"mpisim/internal/ir"
	"mpisim/internal/machine"
)

// deadlockedRing is a program every static pass accepts except the
// deadlock detector: all ranks post a receive before any send.
func deadlockedRing() *ir.Program {
	myid, np := ir.S(ir.BuiltinMyID), ir.S(ir.BuiltinP)
	return &ir.Program{
		Name:   "ring",
		Arrays: []*ir.ArrayDecl{{Name: "A", Dims: []ir.Expr{ir.N(8)}, Elem: 8}},
		Body: ir.Block(
			&ir.Recv{Src: ir.Mod(ir.Add(myid, ir.Sub(np, ir.N(1))), np), Tag: 5,
				Array: "A", Section: ir.Sec(ir.N(1), ir.N(8))},
			&ir.Send{Dest: ir.Mod(ir.Add(myid, ir.N(1)), np), Tag: 5,
				Array: "A", Section: ir.Sec(ir.N(1), ir.N(8))},
		),
	}
}

// The fail-fast hook must refuse to simulate a program with
// error-severity findings, and SkipChecks must bypass exactly that.
func TestRunRefusesCheckedErrors(t *testing.T) {
	r, err := NewRunner(deadlockedRing(), machine.IBMSP())
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Run(Measured, 4, nil)
	var ce *CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("expected a CheckError, got %v", err)
	}
	if ce.Result == nil || !ce.Result.HasErrors() {
		t.Fatal("CheckError carries no error findings")
	}
	// The cache must serve the repeat verification.
	if _, err := r.Run(DirectExec, 4, nil); !errors.As(err, &ce) {
		t.Fatalf("expected a cached CheckError, got %v", err)
	}
	if len(r.checkCache) != 1 {
		t.Fatalf("expected one cached configuration, have %d", len(r.checkCache))
	}
}

func TestSkipChecksEscapeHatch(t *testing.T) {
	r, err := NewRunner(deadlockedRing(), machine.IBMSP())
	if err != nil {
		t.Fatal(err)
	}
	r.SkipChecks = true
	// The simulation itself must then hit the deadlock dynamically; the
	// kernel detects the global stall and errors out rather than hanging.
	if _, err := r.Run(Measured, 4, nil); err == nil {
		t.Fatal("deadlocked ring simulated to completion")
	} else if errors.As(err, new(*CheckError)) {
		t.Fatalf("SkipChecks did not bypass verification: %v", err)
	}
}
