package core

import (
	"strings"
	"testing"

	"mpisim/internal/apps"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
	"mpisim/internal/obs"
)

func tomcatvRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(apps.Tomcatv(), machine.IBMSP())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestModeString(t *testing.T) {
	if Measured.String() != "measured" || DirectExec.String() != "MPI-SIM-DE" ||
		Abstract.String() != "MPI-SIM-AM" || Mode(99).String() != "unknown" {
		t.Fatal("mode strings wrong")
	}
}

func TestAbstractRequiresCalibration(t *testing.T) {
	r := tomcatvRunner(t)
	_, err := r.Run(Abstract, 4, apps.TomcatvInputs(64, 1))
	if err == nil || !strings.Contains(err.Error(), "Calibrate") {
		t.Fatalf("expected calibration error, got %v", err)
	}
}

func TestCalibrateProducesAllTaskTimes(t *testing.T) {
	r := tomcatvRunner(t)
	tt, err := r.Calibrate(4, apps.TomcatvInputs(64, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tt) != len(r.Compiled.TaskVars) {
		t.Fatalf("calibrated %d of %d tasks", len(tt), len(r.Compiled.TaskVars))
	}
	for name, w := range tt {
		if w <= 0 {
			t.Errorf("task %s: w = %g", name, w)
		}
	}
}

func TestValidateWorkflow(t *testing.T) {
	r := tomcatvRunner(t)
	inputs := apps.TomcatvInputs(96, 2)
	v, err := r.Validate(4, inputs, 4, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if v.MeasuredTime <= 0 || v.DETime <= 0 || v.AMTime <= 0 {
		t.Fatalf("degenerate times: %+v", v)
	}
	if v.DEError > 0.10 {
		t.Errorf("DE error %.3f", v.DEError)
	}
	if v.AMError > 0.17 {
		t.Errorf("AM error %.3f", v.AMError)
	}
	// The AM run must use far less memory.
	if v.AMRep.TotalPeakBytes*10 > v.DERep.TotalPeakBytes {
		t.Errorf("memory: AM=%d DE=%d", v.AMRep.TotalPeakBytes, v.DERep.TotalPeakBytes)
	}
}

func TestMemoryEstimates(t *testing.T) {
	r := tomcatvRunner(t)
	inputs := apps.TomcatvInputs(128, 1)
	deMem, err := r.DEMemory(8, inputs)
	if err != nil {
		t.Fatal(err)
	}
	amMem, err := r.AMMemory(8, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if deMem <= 0 || amMem <= 0 || amMem*20 > deMem {
		t.Fatalf("DE=%d AM=%d", deMem, amMem)
	}
	// The estimate must match what a real DE run allocates.
	rep, err := r.Run(DirectExec, 8, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalPeakBytes != deMem {
		t.Fatalf("estimate %d != actual %d", deMem, rep.TotalPeakBytes)
	}
	// 128x(ceil(128/8)+2)x8x6 arrays per rank x 8 ranks
	want := int64(128*18*8*6) * 8
	if deMem != want {
		t.Fatalf("DE memory = %d, want %d", deMem, want)
	}
}

func TestMemoryLimitStopsDE(t *testing.T) {
	r := tomcatvRunner(t)
	r.MemoryLimit = 100 << 10
	_, err := r.Run(DirectExec, 8, apps.TomcatvInputs(256, 1))
	if err == nil || !mpi.IsMemoryLimit(err) {
		t.Fatalf("expected memory-limit failure, got %v", err)
	}
	// AM at the same configuration succeeds.
	if _, err := r.Calibrate(4, apps.TomcatvInputs(64, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(Abstract, 8, apps.TomcatvInputs(256, 1)); err != nil {
		t.Fatalf("AM run failed under DE memory limit: %v", err)
	}
}

func TestAbstractScalesToManyRanks(t *testing.T) {
	// The headline capability: simulate far more target processors than
	// direct execution could (paper: 10,000+). Scaled down for test time.
	npx, npy := apps.ProcGrid(256)
	inputs := apps.Sweep3DInputs(4, 4, 16, 8, npx, npy)
	r, err := NewRunner(apps.Sweep3D(), machine.IBMSP())
	if err != nil {
		t.Fatal(err)
	}
	calNpx, calNpy := apps.ProcGrid(4)
	if _, err := r.Calibrate(4, apps.Sweep3DInputs(4, 4, 16, 8, calNpx, calNpy)); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Abstract, 256, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time <= 0 {
		t.Fatal("no simulated time")
	}
	// Per-rank memory is just the dummy buffer and small faces.
	if rep.MaxRankPeakBytes > 1<<20 {
		t.Fatalf("AM per-rank memory too large: %d", rep.MaxRankPeakBytes)
	}
}

func TestNewRunnerRejectsBadInputs(t *testing.T) {
	if _, err := NewRunner(apps.Tomcatv(), &machine.Model{Name: "bad"}); err == nil {
		t.Fatal("expected machine validation error")
	}
}

func TestRunUnknownMode(t *testing.T) {
	r := tomcatvRunner(t)
	if _, err := r.Run(Mode(42), 2, apps.TomcatvInputs(32, 1)); err == nil {
		t.Fatal("expected unknown mode error")
	}
}

func TestPureAnalyticMode(t *testing.T) {
	r := tomcatvRunner(t)
	inputs := apps.TomcatvInputs(96, 2)
	if _, err := r.Run(PureAnalytic, 4, inputs); err == nil {
		t.Fatal("expected task-time requirement error")
	}
	if _, err := r.Calibrate(4, inputs); err != nil {
		t.Fatal(err)
	}
	pa, err := r.Run(PureAnalytic, 4, inputs)
	if err != nil {
		t.Fatal(err)
	}
	am, err := r.Run(Abstract, 4, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Time <= 0 {
		t.Fatal("no predicted time")
	}
	// No messages are simulated under the abstract comm model.
	if pa.Kernel.Delivered != 0 {
		t.Fatalf("abstract comm delivered %d messages", pa.Kernel.Delivered)
	}
	// For a loosely synchronized code the two AM variants stay in the
	// same ballpark (within 2x).
	if pa.Time > 2*am.Time || am.Time > 2*pa.Time {
		t.Fatalf("pure-analytic %g vs event AM %g diverge too much", pa.Time, am.Time)
	}
	if PureAnalytic.String() != "MPI-SIM-AM/abstract-comm" {
		t.Fatal("mode string wrong")
	}
}

func TestEstimateTaskTimesStatic(t *testing.T) {
	r := tomcatvRunner(t)
	inputs := apps.TomcatvInputs(96, 2)
	tt, err := r.EstimateTaskTimes(4, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tt) != len(r.Compiled.TaskVars) {
		t.Fatalf("estimated %d of %d tasks", len(tt), len(r.Compiled.TaskVars))
	}
	// Static estimates enable AM prediction without any calibration run;
	// for a compute-bound code the error stays moderate because the
	// estimate uses the same operation accounting as the interpreter.
	am, err := r.Run(Abstract, 4, inputs)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := r.Run(Measured, 4, inputs)
	if err != nil {
		t.Fatal(err)
	}
	e := relAbs(am.Time, meas.Time)
	if e > 0.25 {
		t.Fatalf("static-estimate AM error %.3f too large (AM=%g meas=%g)", e, am.Time, meas.Time)
	}
}

// biasedBranchProgram has a data-dependent branch inside a collapsible
// nest that is taken ~90% of the time, plus a barrier so the nest is a
// condensed task.
func biasedBranchProgram() *ir.Program {
	i := ir.S("i")
	return &ir.Program{
		Name:   "biased",
		Params: []string{"N"},
		Arrays: []*ir.ArrayDecl{{Name: "A", Dims: []ir.Expr{ir.S("N")}, Elem: 8}},
		Body: ir.Block(
			&ir.ReadInput{Var: "N"},
			ir.Loop("work", "i", ir.N(1), ir.S("N"),
				ir.SetA("A", ir.IX(i), ir.Mod(i, ir.N(10))),
				&ir.If{Cond: ir.GE(ir.At("A", i), ir.N(1)), Then: ir.Block(
					// Heavy arm, taken 9 times out of 10.
					ir.SetA("A", ir.IX(i), ir.Mul(ir.At("A", i), ir.N(1.5))),
					ir.SetA("A", ir.IX(i), ir.Add(ir.At("A", i), ir.N(2))),
					ir.SetA("A", ir.IX(i), ir.Sqrt(ir.At("A", i))),
				)},
			),
			&ir.Barrier{},
		),
	}
}

func TestBranchProfilingRefinesUnits(t *testing.T) {
	prog := biasedBranchProgram()
	inputs := map[string]float64{"N": 1000}

	unprofiled, err := NewRunner(prog, machine.IBMSP())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unprofiled.Calibrate(4, inputs); err != nil {
		t.Fatal(err)
	}

	profiled, err := NewRunner(prog, machine.IBMSP())
	if err != nil {
		t.Fatal(err)
	}
	profiled.ProfileBranches = true
	if _, err := profiled.Calibrate(4, inputs); err != nil {
		t.Fatal(err)
	}

	// The profiled scaling function weights the heavy arm at ~0.9, so
	// its unit count for the same config must exceed the 0.5-folded one.
	evalUnits := func(r *Runner) float64 {
		tasks := r.Compiled.Graph.CondensedTasks()
		if len(tasks) == 0 {
			t.Fatal("no condensed tasks")
		}
		se, err := ir.ToSym(tasks[0].Units)
		if err != nil {
			t.Fatalf("units not symbolic: %v", err)
		}
		v, err := se.Eval(map[string]float64{"N": 1000, "P": 4, "myid": 0})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	u0 := evalUnits(unprofiled)
	u1 := evalUnits(profiled)
	if u1 <= u0 {
		t.Fatalf("profiled units %v not larger than unprofiled %v", u1, u0)
	}
	// Both calibrated pipelines still predict the measured time well at
	// the calibration configuration (w compensates either way).
	for _, r := range []*Runner{unprofiled, profiled} {
		meas, err := r.Run(Measured, 4, inputs)
		if err != nil {
			t.Fatal(err)
		}
		am, err := r.Run(Abstract, 4, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if e := relAbs(am.Time, meas.Time); e > 0.05 {
			t.Fatalf("AM error %.3f with profiling=%v", e, r.ProfileBranches)
		}
	}
}

func TestValidateReusesCalibration(t *testing.T) {
	r := tomcatvRunner(t)
	inputs := apps.TomcatvInputs(64, 1)
	if _, err := r.Validate(2, inputs, 2, inputs); err != nil {
		t.Fatal(err)
	}
	tt := r.TaskTimes
	// Second validation must reuse the existing table, not recalibrate.
	if _, err := r.Validate(4, inputs, 2, inputs); err != nil {
		t.Fatal(err)
	}
	for k, v := range tt {
		if r.TaskTimes[k] != v {
			t.Fatalf("task times changed on revalidation")
		}
	}
}

func TestCollectMatrixThroughRunner(t *testing.T) {
	r := tomcatvRunner(t)
	r.CollectMatrix = true
	rep, err := r.Run(Measured, 4, apps.TomcatvInputs(64, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MsgMatrix == nil {
		t.Fatal("matrix not collected through runner")
	}
	// Tomcatv's shift pattern: rank 1 sends to 0 and 2, never to 3.
	if rep.MsgMatrix[1][0] == 0 || rep.MsgMatrix[1][3] != 0 {
		t.Fatalf("unexpected matrix row: %v", rep.MsgMatrix[1])
	}
}

// TestRunInfoLifecycle drives a full run and a budget-aborted run and
// checks the tracker ends in done/aborted with the right vitals.
func TestRunInfoLifecycle(t *testing.T) {
	r := tomcatvRunner(t)
	r.RunInfo = obs.NewRunInfo()
	rep, err := r.Run(Measured, 4, apps.TomcatvInputs(64, 1))
	if err != nil {
		t.Fatal(err)
	}
	st := r.RunInfo.Status()
	if st.State != obs.RunDone || st.Percent != 1 {
		t.Fatalf("after clean run: state=%v percent=%g", st.State, st.Percent)
	}
	if st.Virtual != rep.Time {
		t.Fatalf("final virtual %g, report %g", st.Virtual, rep.Time)
	}

	r2 := tomcatvRunner(t)
	r2.RunInfo = obs.NewRunInfo()
	// The guard checks the event budget at flush granularity (64
	// events/worker), so use a run long enough to cross it.
	r2.MaxEvents = 100
	_, err = r2.Run(Measured, 4, apps.TomcatvInputs(64, 50))
	if err == nil {
		t.Fatal("expected budget abort")
	}
	st = r2.RunInfo.Status()
	if st.State != obs.RunAborted {
		t.Fatalf("after abort: state=%v", st.State)
	}
	if !strings.Contains(st.AbortReason, "budget") {
		t.Fatalf("abort reason %q", st.AbortReason)
	}
}

// TestEstimateHorizon checks the abstract pre-run stores a positive
// virtual-time horizon that the real run then completes against.
func TestEstimateHorizon(t *testing.T) {
	r := tomcatvRunner(t)
	inputs := apps.TomcatvInputs(64, 1)
	tt, err := r.Calibrate(4, inputs)
	if err != nil {
		t.Fatal(err)
	}
	r.TaskTimes = tt
	r.RunInfo = obs.NewRunInfo()
	h, err := r.EstimateHorizon(4, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 {
		t.Fatalf("horizon %g, want > 0", h)
	}
	if st := r.RunInfo.Status(); st.HorizonVirtual != h {
		t.Fatalf("stored horizon %g, want %g", st.HorizonVirtual, h)
	}
	if _, err := r.Run(Abstract, 4, inputs); err != nil {
		t.Fatal(err)
	}
	if st := r.RunInfo.Status(); st.State != obs.RunDone || st.Percent != 1 {
		t.Fatalf("after run: %+v", st)
	}
}
