package mpisim

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (one benchmark per experiment; run with
// `go test -bench=Figure -benchtime=1x`), measures the simulator's own
// throughput, and quantifies the design choices DESIGN.md calls out for
// ablation (condensation granularity, slicing, engine choice,
// communication model).

import (
	"testing"

	"mpisim/internal/compiler"
	"mpisim/internal/interp"
	"mpisim/internal/mpi"
	"mpisim/internal/sim"
	"mpisim/internal/symexpr"
	"mpisim/internal/tables"
)

// benchCfg bounds experiment size so each bench iteration is seconds.
func benchCfg() tables.Config { return tables.Config{RankCap: 16} }

func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := tables.ByID(id, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if res.Render() == "" {
			b.Fatal("empty render")
		}
	}
}

// One benchmark per paper table/figure.

func BenchmarkFigure3Tomcatv(b *testing.B)       { runExperimentBench(b, "fig3") }
func BenchmarkFigure4Sweep3D(b *testing.B)       { runExperimentBench(b, "fig4") }
func BenchmarkFigure5SPClassA(b *testing.B)      { runExperimentBench(b, "fig5") }
func BenchmarkFigure6SPClassC(b *testing.B)      { runExperimentBench(b, "fig6") }
func BenchmarkFigure7ErrorSummary(b *testing.B)  { runExperimentBench(b, "fig7") }
func BenchmarkFigure8Sample(b *testing.B)        { runExperimentBench(b, "fig8") }
func BenchmarkFigure9SampleRatio(b *testing.B)   { runExperimentBench(b, "fig9") }
func BenchmarkTable1Memory(b *testing.B)         { runExperimentBench(b, "table1") }
func BenchmarkFigure10Scalability(b *testing.B)  { runExperimentBench(b, "fig10") }
func BenchmarkFigure11Scalability(b *testing.B)  { runExperimentBench(b, "fig11") }
func BenchmarkFigure12AbsolutePerf(b *testing.B) { runExperimentBench(b, "fig12") }
func BenchmarkFigure13AbsolutePerf(b *testing.B) { runExperimentBench(b, "fig13") }
func BenchmarkFigure14ParallelPerf(b *testing.B) { runExperimentBench(b, "fig14") }
func BenchmarkFigure15Speedup(b *testing.B)      { runExperimentBench(b, "fig15") }
func BenchmarkFigure16LargeSystems(b *testing.B) { runExperimentBench(b, "fig16") }

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationCondenseRegions measures the full workflow with the
// paper's maximal-region condensation; compare with
// BenchmarkAblationCondenseLeaves. Fewer tasks mean fewer delay calls
// and timer probes.
func BenchmarkAblationCondenseRegions(b *testing.B) { ablationCondense(b, false) }

// BenchmarkAblationCondenseLeaves condenses every leaf compute node
// separately (no region merging).
func BenchmarkAblationCondenseLeaves(b *testing.B) { ablationCondense(b, true) }

func ablationCondense(b *testing.B, leaves bool) {
	prog := Tomcatv()
	inputs := TomcatvInputs(128, 2)
	var tasks int
	for i := 0; i < b.N; i++ {
		res, err := compiler.CompileOpts(prog, compiler.Options{NoCondense: leaves})
		if err != nil {
			b.Fatal(err)
		}
		tasks = len(res.TaskVars)
		cal := interp.NewCalibration()
		if _, err := interp.Run(res.Timer, interp.Config{
			Ranks: 4, Machine: IBMSP(), Comm: mpi.Detailed,
			Inputs: inputs, Calibration: cal}); err != nil {
			b.Fatal(err)
		}
		if _, err := interp.Run(res.Simplified, interp.Config{
			Ranks: 4, Machine: IBMSP(), Comm: mpi.Analytic,
			Inputs: inputs, TaskTimes: cal.TaskTimes()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tasks), "tasks")
}

// BenchmarkAblationSliceOn/Off quantify what program slicing buys: with
// slicing disabled, the retained scalar computations (loop bounds, block
// sizes) are dropped, and the prediction error explodes. The bench
// reports the AM prediction error as a metric.
func BenchmarkAblationSliceOn(b *testing.B)  { ablationSlice(b, false) }
func BenchmarkAblationSliceOff(b *testing.B) { ablationSlice(b, true) }

func ablationSlice(b *testing.B, noSlice bool) {
	prog := Tomcatv()
	inputs := TomcatvInputs(128, 2)
	meas, err := interp.Run(prog, interp.Config{
		Ranks: 4, Machine: IBMSP(), Comm: mpi.Detailed, Inputs: inputs})
	if err != nil {
		b.Fatal(err)
	}
	var relErr float64
	for i := 0; i < b.N; i++ {
		res, err := compiler.CompileOpts(prog, compiler.Options{NoSlice: noSlice})
		if err != nil {
			b.Fatal(err)
		}
		cal := interp.NewCalibration()
		if _, err := interp.Run(res.Timer, interp.Config{
			Ranks: 4, Machine: IBMSP(), Comm: mpi.Detailed,
			Inputs: inputs, Calibration: cal}); err != nil {
			b.Fatal(err)
		}
		am, err := interp.Run(res.Simplified, interp.Config{
			Ranks: 4, Machine: IBMSP(), Comm: mpi.Analytic,
			Inputs: inputs, TaskTimes: cal.TaskTimes()})
		if err != nil {
			b.Fatal(err)
		}
		relErr = (am.Time - meas.Time) / meas.Time
		if relErr < 0 {
			relErr = -relErr
		}
	}
	b.ReportMetric(100*relErr, "%err")
}

// BenchmarkAblationEngine* compare the sequential engine with the
// conservative parallel engine (modeled workers and real goroutines) on
// identical simulations.
func BenchmarkAblationEngineSequential(b *testing.B) { ablationEngine(b, 1, false) }
func BenchmarkAblationEngineWorkers2(b *testing.B)   { ablationEngine(b, 2, true) }
func BenchmarkAblationEngineWorkers4(b *testing.B)   { ablationEngine(b, 4, true) }

func ablationEngine(b *testing.B, workers int, real bool) {
	prog := Sweep3D()
	inputs := Sweep3DInputs(4, 4, 32, 8, 4, 4)
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(prog, interp.Config{
			Ranks: 16, Machine: IBMSP(), Comm: mpi.Detailed, Inputs: inputs,
			HostWorkers: workers, RealParallel: real}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationComm* compare the detailed (NIC occupancy), analytic
// (latency+bandwidth) and abstract (closed-form, no events) communication
// models: successively cheaper to simulate, successively less faithful.
func BenchmarkAblationCommDetailed(b *testing.B) { ablationComm(b, mpi.Detailed) }
func BenchmarkAblationCommAnalytic(b *testing.B) { ablationComm(b, mpi.Analytic) }
func BenchmarkAblationCommAbstract(b *testing.B) { ablationComm(b, mpi.AbstractComm) }

// BenchmarkAblationAbstractCommError quantifies what the abstract
// communication model loses on a wavefront code: the reported metric is
// its prediction error against the event-driven AM prediction.
func BenchmarkAblationAbstractCommError(b *testing.B) {
	r, err := NewRunner(Sweep3D(), IBMSP())
	if err != nil {
		b.Fatal(err)
	}
	inputs := Sweep3DInputs(4, 4, 32, 8, 4, 4)
	if _, err := r.Calibrate(16, inputs); err != nil {
		b.Fatal(err)
	}
	var relErr float64
	for i := 0; i < b.N; i++ {
		am, err := r.Run(Abstract, 16, inputs)
		if err != nil {
			b.Fatal(err)
		}
		pa, err := r.Run(PureAnalytic, 16, inputs)
		if err != nil {
			b.Fatal(err)
		}
		relErr = (pa.Time - am.Time) / am.Time
		if relErr < 0 {
			relErr = -relErr
		}
	}
	b.ReportMetric(100*relErr, "%err")
}

func ablationComm(b *testing.B, comm mpi.CommModel) {
	prog := Sample()
	inputs := SampleInputs(PatternNearestNeighbour, 1000, 2000, 10, 2, 4)
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(prog, interp.Config{
			Ranks: 8, Machine: Origin2000(), Comm: comm, Inputs: inputs}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulator micro-benchmarks -------------------------------------------

// BenchmarkKernelMessageRate measures raw kernel event throughput
// (messages simulated per second) on a two-process ping-pong.
func BenchmarkKernelMessageRate(b *testing.B) {
	const msgs = 10000
	for i := 0; i < b.N; i++ {
		k, err := sim.NewKernel(sim.Config{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		k.Spawn("ping", func(p *sim.Proc) {
			for j := 0; j < msgs; j++ {
				p.Send(1, nil, 8, p.Now()+1e-6)
				p.FreeMessage(p.RecvSrcTag(sim.Any, sim.Any))
			}
		})
		k.Spawn("pong", func(p *sim.Proc) {
			for j := 0; j < msgs; j++ {
				p.FreeMessage(p.RecvSrcTag(sim.Any, sim.Any))
				p.Send(0, nil, 8, p.Now()+1e-6)
			}
		})
		if _, err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*msgs), "msgs/op")
}

// BenchmarkInterpThroughput measures interpreted statement throughput on
// a pure compute nest.
func BenchmarkInterpThroughput(b *testing.B) {
	prog := Tomcatv()
	inputs := TomcatvInputs(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(prog, interp.Config{
			Ranks: 1, Machine: IBMSP(), Comm: mpi.Analytic, Inputs: inputs}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures the full compiler pipeline (STG,
// condensation, slicing, emission) on the largest program.
func BenchmarkCompile(b *testing.B) {
	prog := NASSP()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymbolicEval measures scaling-function evaluation speed.
func BenchmarkSymbolicEval(b *testing.B) {
	e := symexpr.MustParse("(N - 2) * (min(N, myid*b + b) - max(2, myid*b + 1)) * w_1")
	env := symexpr.Env{"N": 2048, "myid": 3, "b": 256, "w_1": 2e-8}
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAbstractManyRanks measures AM simulation cost at a large
// target count — the headline capability.
func BenchmarkAbstractManyRanks(b *testing.B) {
	r, err := NewRunner(Sweep3D(), IBMSP())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.Calibrate(4, Sweep3DInputs(4, 4, 16, 8, 2, 2)); err != nil {
		b.Fatal(err)
	}
	npx, npy := ProcGrid(1024)
	inputs := Sweep3DInputs(4, 4, 16, 8, npx, npy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(Abstract, 1024, inputs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1024, "targets")
}

// BenchmarkAblationProtocol* compare the kernel's two conservative
// synchronization protocols on the same parallel simulation.
func BenchmarkAblationProtocolWindow(b *testing.B)      { ablationProtocol(b, sim.ProtocolWindow) }
func BenchmarkAblationProtocolNullMessage(b *testing.B) { ablationProtocol(b, sim.ProtocolNullMessage) }

func ablationProtocol(b *testing.B, proto sim.Protocol) {
	prog := Sample()
	inputs := SampleInputs(PatternNearestNeighbour, 2000, 500, 20, 2, 4)
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(prog, interp.Config{
			Ranks: 8, Machine: Origin2000(), Comm: mpi.Detailed, Inputs: inputs,
			HostWorkers: 4, RealParallel: true, Protocol: proto}); err != nil {
			b.Fatal(err)
		}
	}
}
