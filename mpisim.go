// Package mpisim is a Go reproduction of "Compiler-Supported Simulation
// of Highly Scalable Parallel Applications" (Adve, Bagrodia, Deelman,
// Phan, Sakellariou; SC 1999): the MPI-Sim direct-execution parallel
// simulator integrated with a dhpf-style compiler that synthesizes static
// task graphs, condenses communication-free regions into tasks with
// symbolic scaling functions, slices the program to the computations
// that determine parallel behaviour, and emits simplified programs whose
// collapsed computation is replaced by calls to the simulator's delay
// function.
//
// The package is a facade over the internal packages; everything needed
// to reproduce the paper is reachable from here:
//
//	prog := mpisim.Tomcatv()
//	r, _ := mpisim.NewRunner(prog, mpisim.IBMSP())
//	r.Calibrate(16, mpisim.TomcatvInputs(2048, 100))     // timer run -> w_i
//	rep, _ := r.Run(mpisim.Abstract, 64, mpisim.TomcatvInputs(2048, 100))
//	fmt.Println(rep.Time)                                 // predicted seconds
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package mpisim

import (
	"mpisim/internal/apps"
	"mpisim/internal/compiler"
	"mpisim/internal/core"
	"mpisim/internal/dtg"
	"mpisim/internal/hostmodel"
	"mpisim/internal/interp"
	"mpisim/internal/ir"
	"mpisim/internal/machine"
	"mpisim/internal/mpi"
	"mpisim/internal/stg"
	"mpisim/internal/tables"
	"mpisim/internal/trace"
)

// Core workflow types.
type (
	// Program is a message-passing program in the IR consumed by the
	// compiler and the simulator.
	Program = ir.Program
	// Machine is a target-architecture model.
	Machine = machine.Model
	// Runner drives the compile/calibrate/simulate workflow for one
	// program on one machine.
	Runner = core.Runner
	// Mode selects measured / direct-execution / abstract evaluation.
	Mode = core.Mode
	// Validation compares the three modes on one configuration.
	Validation = core.Validation
	// Report is the outcome of one simulation run.
	Report = mpi.Report
	// RankStats is per-rank accounting inside a Report.
	RankStats = mpi.RankStats
	// CompileResult bundles the compiler artifacts (simplified program,
	// timer program, condensed task graph, slice).
	CompileResult = compiler.Result
	// TaskGraph is a static task graph.
	TaskGraph = stg.Graph
	// HostParams are the host-cost model coefficients.
	HostParams = hostmodel.Params
	// HostWorkload summarizes a run for the host-cost model.
	HostWorkload = hostmodel.Workload
	// ExperimentConfig controls experiment scale (scaled vs paper-size).
	ExperimentConfig = tables.Config
	// ExperimentResult is a regenerated figure or table.
	ExperimentResult = tables.Result
)

// Evaluation modes (paper terminology).
const (
	// Measured is the ground truth: full computation on the detailed
	// communication model (the stand-in for the real machine).
	Measured = core.Measured
	// DirectExec is MPI-SIM-DE: direct execution plus the analytic
	// communication model.
	DirectExec = core.DirectExec
	// Abstract is MPI-SIM-AM: the compiler-simplified program with
	// calibrated delay calls.
	Abstract = core.Abstract
	// PureAnalytic is the §5 extension: analytical models for both the
	// sequential tasks and the communication (no event simulation).
	PureAnalytic = core.PureAnalytic
)

// NewRunner compiles a program for a machine and returns a Runner.
func NewRunner(p *Program, m *Machine) (*Runner, error) { return core.NewRunner(p, m) }

// Compile runs the dhpf-style pipeline alone: static task graph,
// condensation, slicing, and emission of the simplified and timer
// programs.
func Compile(p *Program) (*CompileResult, error) { return compiler.Compile(p) }

// TaskGraphOf synthesizes the (uncondensed) static task graph of a
// program.
func TaskGraphOf(p *Program) (*TaskGraph, error) { return stg.Build(p) }

// MemoryEstimate returns the bytes of target array state a
// direct-execution simulation would need, without running it.
func MemoryEstimate(p *Program, ranks int, inputs map[string]float64) (int64, error) {
	return interp.MemoryEstimate(p, ranks, inputs)
}

// Machines.

// IBMSP models the distributed-memory IBM SP of the paper's validations.
func IBMSP() *Machine { return machine.IBMSP() }

// Origin2000 models the SGI Origin 2000 of the SAMPLE experiments.
func Origin2000() *Machine { return machine.Origin2000() }

// Cluster models a commodity Beowulf cluster on fast Ethernet (not in
// the paper; useful for studying machine-dependence of the conclusions).
func Cluster() *Machine { return machine.Cluster() }

// MachineByName resolves a preset machine model by name.
func MachineByName(name string) (*Machine, error) { return machine.ByName(name) }

// Benchmarks (the paper's workloads, written once in the IR; the
// compiler derives their simplified and timer variants).

// Tomcatv returns the SPEC92 mesh-generation benchmark ((*,BLOCK) HPF
// distribution compiled to MPI).
func Tomcatv() *Program { return apps.Tomcatv() }

// TomcatvInputs builds Tomcatv inputs for an n x n grid and iter steps.
func TomcatvInputs(n, iter int) map[string]float64 { return apps.TomcatvInputs(n, iter) }

// Sweep3D returns the ASCI wavefront transport kernel.
func Sweep3D() *Program { return apps.Sweep3D() }

// Sweep3DInputs builds Sweep3D inputs: per-processor grid it x jt x kt,
// k-block size mk, and the npx x npy process grid.
func Sweep3DInputs(it, jt, kt, mk, npx, npy int) map[string]float64 {
	return apps.Sweep3DInputs(it, jt, kt, mk, npx, npy)
}

// NASSP returns the ADI scalar-pentadiagonal solver in the style of NAS
// SP.
func NASSP() *Program { return apps.NASSP() }

// NASSPInputs builds NAS SP inputs for an nx^3 grid, steps ADI steps and
// a q x q process grid.
func NASSPInputs(nx, steps, q int) map[string]float64 { return apps.NASSPInputs(nx, steps, q) }

// Sample returns the synthetic SAMPLE communication kernel.
func Sample() *Program { return apps.Sample() }

// SampleInputs builds SAMPLE inputs; pattern is PatternWavefront or
// PatternNearestNeighbour.
func SampleInputs(pattern, work, msg, iters, npx, npy int) map[string]float64 {
	return apps.SampleInputs(pattern, work, msg, iters, npx, npy)
}

// SAMPLE pattern selectors.
const (
	// PatternWavefront selects the pipelined wavefront pattern.
	PatternWavefront = apps.PatternWavefront
	// PatternNearestNeighbour selects the 4-neighbour exchange pattern.
	PatternNearestNeighbour = apps.PatternNearestNeighbour
)

// ProcGrid factors a rank count into the most square npx x npy grid.
func ProcGrid(ranks int) (npx, npy int) { return apps.ProcGrid(ranks) }

// Host-cost model (simulator performance, Figures 12-16).

// DefaultHostParams returns the calibrated host-cost coefficients.
func DefaultHostParams() HostParams { return hostmodel.Default() }

// HostWorkloadFrom extracts a host-cost workload from a report.
func HostWorkloadFrom(rep *Report, directExec bool, lookahead float64) HostWorkload {
	return hostmodel.FromReport(rep, directExec, lookahead)
}

// Timeline renders a traced report (Runner.CollectTrace = true) as a
// per-rank activity chart of the predicted execution.
func Timeline(rep *Report, width int) (string, error) { return trace.Timeline(rep, width) }

// Utilization is the activity breakdown of a traced report.
type Utilization = trace.Utilization

// Utilize computes the utilization breakdown of a traced report.
func Utilize(rep *Report) (*Utilization, error) { return trace.Utilize(rep) }

// Dynamic task graph analyses.

// DynGraph is the dynamic task graph of one traced run: the unrolled DAG
// of executed task instances and messages.
type DynGraph = dtg.Graph

// DynStats summarizes a dynamic task graph (total work, critical path,
// average parallelism, zero-latency bound).
type DynStats = dtg.Stats

// BuildDynGraph constructs the dynamic task graph from a traced report
// (Runner.CollectTrace = true).
func BuildDynGraph(rep *Report) (*DynGraph, error) { return dtg.Build(rep) }

// Experiments (every table and figure of the paper's evaluation).

// RunExperiment regenerates one experiment by id ("fig3".."fig16",
// "table1").
func RunExperiment(id string, cfg ExperimentConfig) (ExperimentResult, error) {
	return tables.ByID(id, cfg)
}

// ExperimentIDs lists the experiment identifiers in paper order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range tables.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}
