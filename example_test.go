package mpisim_test

import (
	"fmt"
	"log"

	"mpisim"
)

// The complete Figure-2 workflow: compile, calibrate on a reference
// configuration, and validate the optimized simulator's prediction.
func ExampleNewRunner() {
	runner, err := mpisim.NewRunner(mpisim.Tomcatv(), mpisim.IBMSP())
	if err != nil {
		log.Fatal(err)
	}
	inputs := mpisim.TomcatvInputs(96, 2)
	v, err := runner.Validate(8, inputs, 4, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("within paper envelope:", v.AMError < 0.17)
	fmt.Println("AM uses less memory:", v.AMRep.TotalPeakBytes < v.DERep.TotalPeakBytes/10)
	// Output:
	// within paper envelope: true
	// AM uses less memory: true
}

// Compiling alone exposes the dhpf-side artifacts: condensed tasks and
// the simplified program with its dummy communication buffer.
func ExampleCompile() {
	res, err := mpisim.Compile(mpisim.Tomcatv())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("condensed tasks:", len(res.TaskVars))
	fmt.Println("dummy buffer:", res.Simplified.Array("dummy_buf") != nil)
	fmt.Println("big arrays kept:", res.Slice.KeptArrays["X"])
	// Output:
	// condensed tasks: 3
	// dummy buffer: true
	// big arrays kept: false
}

// Estimating memory without running reproduces how the paper reasons
// about the direct-execution memory wall.
func ExampleMemoryEstimate() {
	inputs := mpisim.TomcatvInputs(2048, 100)
	de, err := mpisim.MemoryEstimate(mpisim.Tomcatv(), 64, inputs)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mpisim.Compile(mpisim.Tomcatv())
	if err != nil {
		log.Fatal(err)
	}
	am, err := mpisim.MemoryEstimate(res.Simplified, 64, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reduction: %dx\n", de/am)
	// Output:
	// reduction: 204x
}

// The dynamic task graph of a traced run supports critical-path and
// what-if analyses.
func ExampleBuildDynGraph() {
	runner, err := mpisim.NewRunner(mpisim.Sweep3D(), mpisim.IBMSP())
	if err != nil {
		log.Fatal(err)
	}
	runner.CollectTrace = true
	rep, err := runner.Run(mpisim.Measured, 4, mpisim.Sweep3DInputs(4, 4, 16, 8, 2, 2))
	if err != nil {
		log.Fatal(err)
	}
	g, err := mpisim.BuildDynGraph(rep)
	if err != nil {
		log.Fatal(err)
	}
	s := g.Summarize()
	fmt.Println("critical path <= simulated:", s.CriticalPath <= s.SimTime)
	fmt.Println("zero-latency is faster:", s.ZeroLatency < s.CriticalPath)
	// Output:
	// critical path <= simulated: true
	// zero-latency is faster: true
}

// ProcGrid factors rank counts into near-square process grids.
func ExampleProcGrid() {
	for _, ranks := range []int{4, 6, 12, 64} {
		x, y := mpisim.ProcGrid(ranks)
		fmt.Printf("%d -> %dx%d\n", ranks, x, y)
	}
	// Output:
	// 4 -> 2x2
	// 6 -> 2x3
	// 12 -> 3x4
	// 64 -> 8x8
}

// Machine presets are resolved by name for command-line use.
func ExampleMachineByName() {
	m, err := mpisim.MachineByName("origin2000")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Name)
	// Output:
	// SGI-Origin-2000
}
